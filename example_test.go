package subgraphmr_test

import (
	"fmt"
	"strings"

	"subgraphmr"
)

// ExampleEnumerate finds every triangle of the complete graph K5 in one
// map-reduce round with the default bucket-oriented strategy.
func ExampleEnumerate() {
	g := subgraphmr.CompleteGraph(5)
	res, err := subgraphmr.Enumerate(g, subgraphmr.Triangle(), subgraphmr.Options{
		Buckets: 2,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("triangles in K5: %d\n", res.Count)
	fmt.Printf("jobs: %d, conjunctive queries: %d\n", len(res.Jobs), res.NumCQs)
	fmt.Printf("communication: %d key-value pairs (%.1f per edge)\n",
		res.TotalComm(), float64(res.TotalComm())/float64(g.NumEdges()))
	// Output:
	// triangles in K5: 10
	// jobs: 1, conjunctive queries: 1
	// communication: 20 key-value pairs (2.0 per edge)
}

// ExampleOptimizeShares solves the Section 4 share-optimization problem
// for the triangle sample with a budget of 64 reducers: by symmetry every
// variable gets the same share k^(1/3) = 4.
func ExampleOptimizeShares() {
	model := subgraphmr.VariableOrientedModel(3, subgraphmr.MergedCQsFor(subgraphmr.Triangle()))
	sol, err := subgraphmr.OptimizeShares(model, 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("shares: %.0f %.0f %.0f\n", sol.Shares[0], sol.Shares[1], sol.Shares[2])
	fmt.Printf("optimal communication per edge: %.0f\n", sol.CostPerEdge)
	// Output:
	// shares: 4 4 4
	// optimal communication per edge: 12
}

// ExampleRunRound chains two map-reduce rounds on the pipelined engine: a
// word count with a pre-shuffle counting combiner, then a round keyed by
// count collecting words of equal frequency. The Chain accumulates
// per-round metrics.
func ExampleRunRound() {
	type wordCount struct {
		Word  string
		Count int64
	}
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	chain := subgraphmr.NewChain(subgraphmr.EngineConfig{Parallelism: 2})

	counts := subgraphmr.RunRound(chain, subgraphmr.MapReduceJob[string, string, int64, wordCount]{
		Name: "word count",
		Map: func(line string, emit func(string, int64)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, partial []int64) []int64 {
			var sum int64
			for _, c := range partial {
				sum += c
			}
			return []int64{sum}
		},
		Reduce: func(_ *subgraphmr.ReduceContext, word string, partial []int64, emit func(wordCount)) {
			var sum int64
			for _, c := range partial {
				sum += c
			}
			emit(wordCount{word, sum})
		},
	}, lines)

	byFreq := subgraphmr.RunRound(chain, subgraphmr.MapReduceJob[wordCount, int64, string, string]{
		Name: "group by frequency",
		Map: func(wc wordCount, emit func(int64, string)) {
			emit(wc.Count, wc.Word)
		},
		Reduce: func(_ *subgraphmr.ReduceContext, count int64, words []string, emit func(string)) {
			emit(fmt.Sprintf("%d× %d word(s)", count, len(words)))
		},
	}, counts)

	fmt.Printf("distinct words: %d\n", len(counts))
	fmt.Printf("frequency groups: %d\n", len(byFreq))
	fmt.Printf("rounds: %d, total shuffled pairs: %d\n",
		chain.NumRounds(), chain.Total().KeyValuePairs)
	// Output:
	// distinct words: 6
	// frequency groups: 3
	// rounds: 2, total shuffled pairs: 15
}
