package subgraphmr

import (
	"fmt"
	"strings"

	"subgraphmr/internal/cq"
	"subgraphmr/internal/cycles"
	"subgraphmr/internal/shares"
	"subgraphmr/internal/triangle"
	"subgraphmr/internal/tworound"
)

// Candidate is one strategy the planner evaluated, with its estimated
// execution shape and cost. Non-viable candidates carry the reason they
// were ruled out (e.g. a triangle-only algorithm for a square sample).
type Candidate struct {
	// Strategy is the candidate strategy.
	Strategy PlanStrategy
	// Viable reports whether the strategy can run this query at all.
	Viable bool
	// Reason explains a non-viable candidate (empty when viable).
	Reason string `json:",omitempty"`
	// Buckets is the resolved bucket count for bucket-style strategies
	// (0 for share-based ones).
	Buckets int `json:",omitempty"`
	// Shares is the per-variable integer share vector of a share-based
	// job, or the uniform bucket vector of a bucket-style one.
	Shares []int `json:",omitempty"`
	// JobShares lists per-job share vectors for CQOriented (one per CQ).
	JobShares [][]int `json:",omitempty"`
	// Jobs is the number of map-reduce jobs the strategy runs.
	Jobs int
	// Rounds is the number of map-reduce rounds (1 except the cascade).
	Rounds int
	// Reducers estimates the number of useful reducers (distinct keys).
	Reducers int64
	// CommPerEdge is the model-predicted communication per data edge.
	CommPerEdge float64
	// EstComm is CommPerEdge × |E| — the predicted key-value pairs
	// shipped, the quantity Auto minimizes (under WithAdaptive it is the
	// probed, exact pair count instead of the model estimate).
	EstComm int64
	// EstShuffleBytes roughly estimates the reduce-side shuffle footprint
	// (pairs × per-pair heap overhead), used for the spill prediction.
	EstShuffleBytes int64

	// The Observed* fields are filled by WithAdaptive's map-only load
	// probes (zero otherwise): the exact pairs the candidate's mapper
	// ships, the hottest reducer's input, the mean reducer input, and
	// their ratio — the measured counterpart of the closed-form estimates.
	ObservedComm     int64   `json:",omitempty"`
	ObservedMaxLoad  int64   `json:",omitempty"`
	ObservedMeanLoad float64 `json:",omitempty"`
	ObservedSkew     float64 `json:",omitempty"`
	// AdjustedCost is the skew-aware cost adaptive Auto minimizes:
	// max(ObservedComm, k × ObservedMaxLoad) — k × the parallel makespan
	// under k reducer slots, in pair units, so balanced candidates score
	// their communication and skewed ones their straggler.
	AdjustedCost int64 `json:",omitempty"`
	// Probed reports whether the adaptive planner probed this candidate.
	Probed bool `json:",omitempty"`
}

// QueryPlan is an explainable execution plan produced by Plan: the chosen
// strategy plus its predicted shape and cost, and every candidate the
// planner compared. Execute it with Run (materialized), Stream (callback),
// or Instances (iterator).
//
// A *QueryPlan is safe for concurrent execution: any number of goroutines
// may call Run, Stream and Instances on the same plan simultaneously (the
// plan-cache use case — internal/serve shares one cached plan across all
// concurrent requests for the same query). The guarantee holds because
// after Plan returns, every field — opts included — is treated as
// immutable by every execution path: each Run constructs its own jobs,
// sinks and engine state, and any path that needs a variant configuration
// (the distributed degradation ladder, the local fallback) copies the plan
// first (lp := *p) and mutates only the copy. That copy-before-mutate rule
// is the invariant new execution paths must keep; TestSharedPlanConcurrentExecution
// pins it under the race detector.
type QueryPlan struct {
	// Strategy is the chosen strategy (never StrategyAuto).
	Strategy PlanStrategy
	// Chosen is the chosen candidate's full estimate.
	Chosen Candidate
	// Candidates lists every evaluated candidate in planner order.
	Candidates []Candidate
	// NumCQs is the number of conjunctive queries the CQ-based strategies
	// evaluate for this sample.
	NumCQs int
	// PredictedSpill reports whether the chosen strategy's estimated
	// shuffle footprint exceeds the configured memory budget (always
	// false without a budget).
	PredictedSpill bool
	// MemoryBudget echoes the configured budget (0 = unlimited).
	MemoryBudget int64 `json:",omitempty"`
	// Adaptive reports that WithAdaptive probed the candidates and the
	// plan was ranked by observed loads; Probes lists every probe row.
	Adaptive bool `json:",omitempty"`
	// SkewThreshold is the max/mean load ratio adaptive execution re-plans
	// at (only set when Adaptive).
	SkewThreshold float64 `json:",omitempty"`
	// Probes is the adaptive planner's probe table: one row per probed
	// configuration (bucket-style candidates are probed at raised bucket
	// counts too), in probing order — cheapest static estimate first.
	// Candidates whose static estimate already exceeds the best probed
	// adjusted cost are skipped (they cannot win) and have no rows.
	Probes []LoadProbe `json:",omitempty"`

	graph  *Graph
	sample *Sample
	// opts is frozen once Plan returns: execution paths read it but never
	// write it (see the concurrency note on QueryPlan — variants copy the
	// plan first). Keeping it a value, not a pointer, makes lp := *p a
	// deep-enough copy: the only reference fields (workers, dist) are
	// replaced wholesale by the paths that touch them, never appended to.
	opts planOpts
	// enc memoizes the distributed wire encoding of the data graph. It is
	// a pointer so plan copies (lp := *p) share the one payload and so the
	// sync.Once inside is never copied after use.
	enc *encodedGraph
}

// planPairOverhead approximates the per-pair heap footprint of the reduce
// workers' group tables (key/value bytes plus map and slice overheads) for
// the spill prediction. It intentionally errs high: predicting a spill
// that ends up borderline is more useful than missing one.
const planPairOverhead = 96

// Plan builds a cost-based execution plan for enumerating s in g. With
// StrategyAuto (the default) it estimates the communication cost of every
// viable strategy — the Section 4 share models for the CQ strategies, the
// closed forms of Sections 2 and 4.5 for the bucket and triangle
// algorithms, and the measured wedge count for the two-round cascade — and
// picks the cheapest (ties break toward the earlier candidate, so the
// paper's preferred bucket-oriented strategy wins equal-cost contests).
// The returned plan records every candidate for inspection via Explain.
func Plan(g *Graph, s *Sample, opts ...Option) (*QueryPlan, error) {
	if g == nil || s == nil {
		return nil, fmt.Errorf("subgraphmr: Plan requires a data graph and a sample")
	}
	if !s.IsConnected() {
		return nil, fmt.Errorf("subgraphmr: map-reduce enumeration requires a connected sample graph")
	}
	o := defaultPlanOpts()
	for _, fn := range opts {
		fn(&o)
	}
	if o.targetReducers <= 0 {
		o.targetReducers = defaultTargetReducers
	}
	if o.buckets > shares.MaxIntShare {
		return nil, fmt.Errorf("subgraphmr: bucket count %d exceeds %d", o.buckets, shares.MaxIntShare)
	}
	p := s.P()
	qs, err := planCQs(s, o)
	if err != nil {
		return nil, err
	}
	m := int64(g.NumEdges())

	cands := []Candidate{
		bucketCandidate(StrategyBucketOriented, p, m, o),
		variableCandidate(p, m, qs, o),
		cqCandidate(p, m, qs, o),
		bucketCandidate(StrategyDecomposed, p, m, o),
		triangleCandidate(StrategyTriangleBucketOrdered, s, m, o),
		triangleCandidate(StrategyTrianglePartition, s, m, o),
		triangleCandidate(StrategyTriangleMultiway, s, m, o),
		twoRoundCandidate(g, s, m),
	}

	var probes []LoadProbe
	if o.adaptive {
		probes = probeCandidates(g, s, qs, cands, o)
	}

	cost := func(c Candidate) int64 {
		if o.adaptive && c.Probed {
			return c.AdjustedCost
		}
		return c.EstComm
	}
	chosen := -1
	if o.strategy == StrategyAuto {
		for i, c := range cands {
			if !c.Viable {
				continue
			}
			if chosen < 0 || cost(c) < cost(cands[chosen]) {
				chosen = i
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("subgraphmr: no viable strategy for sample %v", s)
		}
	} else {
		for i, c := range cands {
			if c.Strategy == o.strategy {
				chosen = i
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("subgraphmr: unknown strategy %v", o.strategy)
		}
		if !cands[chosen].Viable {
			return nil, fmt.Errorf("subgraphmr: strategy %v not viable here: %s", o.strategy, cands[chosen].Reason)
		}
	}

	plan := &QueryPlan{
		Strategy:     cands[chosen].Strategy,
		Chosen:       cands[chosen],
		Candidates:   cands,
		NumCQs:       len(qs),
		MemoryBudget: o.memoryBudget,
		graph:        g,
		sample:       s,
		opts:         o,
		enc:          &encodedGraph{},
	}
	if o.adaptive {
		plan.Adaptive = true
		plan.SkewThreshold = o.resolvedSkewThreshold()
		plan.Probes = probes
	}
	if o.memoryBudget > 0 && plan.Chosen.EstShuffleBytes > o.memoryBudget {
		plan.PredictedSpill = true
	}
	return plan, nil
}

// Graph returns the data graph the plan was built for.
func (p *QueryPlan) Graph() *Graph { return p.graph }

// Sample returns the sample graph the plan was built for.
func (p *QueryPlan) Sample() *Sample { return p.sample }

// planCQs compiles the CQ set the share-based candidates are costed on —
// the Section 5 generator when WithCycleCQs is set, otherwise the general
// Section 3 pipeline. Mirrors core's CQ construction so plan estimates
// match execution.
func planCQs(s *Sample, o planOpts) ([]*CQ, error) {
	if o.cycleCQs {
		if d, reg := s.IsRegular(); !reg || d != 2 {
			return nil, fmt.Errorf("subgraphmr: WithCycleCQs requires a cycle sample, got %v", s)
		}
		var qs []*CQ
		for _, c := range cycles.Generate(s.P()) {
			qs = append(qs, c.CQ)
		}
		return qs, nil
	}
	return cq.MergeByOrientation(cq.GenerateForSample(s)), nil
}

// resolveBuckets picks the bucket count for bucket-style strategies: the
// explicit override, or the shared Theorem 4.2 derivation — the same
// helper execution uses, so plan and job cannot diverge. (Plan resolves
// the targetReducers default before any candidate is built.)
func resolveBuckets(p int, o planOpts) int {
	if o.buckets > 0 {
		return o.buckets
	}
	return shares.BucketsForReducers(o.targetReducers, p)
}

func finishCandidate(c Candidate, m int64) Candidate {
	c.EstComm = int64(c.CommPerEdge * float64(m))
	c.EstShuffleBytes = c.EstComm * planPairOverhead
	return c
}

// bucketCandidate costs the Section 4.5 bucket-oriented strategy (and the
// Theorem 6.1 decomposed conversion, which ships edges identically — it
// differs only in reducer-side algorithm, so it never beats bucket on
// communication and Auto prefers bucket by order).
func bucketCandidate(st PlanStrategy, p int, m int64, o planOpts) Candidate {
	b := resolveBuckets(p, o)
	return finishCandidate(Candidate{
		Strategy:    st,
		Viable:      true,
		Buckets:     b,
		Shares:      uniformIntShares(p, b),
		Jobs:        1,
		Rounds:      1,
		Reducers:    int64(shares.UsefulReducers(b, p)),
		CommPerEdge: shares.BucketEdgeReplication(b, p),
	}, m)
}

// variableCandidate costs the Section 4.3 variable-oriented strategy at
// the integer shares execution will actually use. Shares the engine cannot
// encode (over shares.MaxIntShare) make the candidate non-viable here, at
// plan time — Run would otherwise reject the same shares mid-execution.
func variableCandidate(p int, m int64, qs []*CQ, o planOpts) Candidate {
	k := float64(o.targetReducers)
	model := shares.VariableOrientedModel(p, qs)
	sol, err := model.Solve(k)
	if err != nil {
		return Candidate{Strategy: StrategyVariableOriented, Reason: err.Error()}
	}
	intShares := model.RoundShares(sol.Shares, k)
	if mx := shares.MaxShare(intShares); mx > shares.MaxIntShare {
		return Candidate{
			Strategy: StrategyVariableOriented,
			Reason:   fmt.Sprintf("share %d exceeds the engine limit %d (lower TargetReducers)", mx, shares.MaxIntShare),
		}
	}
	fs := make([]float64, p)
	var reducers int64 = 1
	for v, sh := range intShares {
		fs[v] = float64(sh)
		reducers *= int64(sh)
	}
	return finishCandidate(Candidate{
		Strategy:    StrategyVariableOriented,
		Viable:      true,
		Shares:      intShares,
		Jobs:        1,
		Rounds:      1,
		Reducers:    reducers,
		CommPerEdge: model.CostPerEdge(fs),
	}, m)
}

// cqCandidate costs the Section 4.1 strategy: one job per merged CQ, each
// with its own optimized shares; the total cost is the sum over jobs. Any
// job whose shares exceed the engine limit rules the candidate out at plan
// time (Run would reject those shares mid-sequence otherwise).
func cqCandidate(p int, m int64, qs []*CQ, o planOpts) Candidate {
	k := float64(o.targetReducers)
	var (
		jobShares [][]int
		reducers  int64
		comm      float64
	)
	for _, q := range qs {
		model := shares.ModelFromCQ(q)
		sol, err := model.Solve(k)
		if err != nil {
			return Candidate{Strategy: StrategyCQOriented, Reason: err.Error()}
		}
		intShares := model.RoundShares(sol.Shares, k)
		if mx := shares.MaxShare(intShares); mx > shares.MaxIntShare {
			return Candidate{
				Strategy: StrategyCQOriented,
				Reason:   fmt.Sprintf("share %d exceeds the engine limit %d (lower TargetReducers)", mx, shares.MaxIntShare),
			}
		}
		fs := make([]float64, p)
		var r int64 = 1
		for v, sh := range intShares {
			fs[v] = float64(sh)
			r *= int64(sh)
		}
		jobShares = append(jobShares, intShares)
		reducers += r
		comm += model.CostPerEdge(fs)
	}
	return finishCandidate(Candidate{
		Strategy:    StrategyCQOriented,
		Viable:      true,
		JobShares:   jobShares,
		Jobs:        len(qs),
		Rounds:      1,
		Reducers:    reducers,
		CommPerEdge: comm,
	}, m)
}

// triangleCandidate costs the three Section 2 triangle algorithms using
// their exact closed forms; non-triangle samples rule them out.
func triangleCandidate(st PlanStrategy, s *Sample, m int64, o planOpts) Candidate {
	if !isTriangleSample(s) {
		return Candidate{Strategy: st, Reason: "triangle algorithms require the triangle sample"}
	}
	k := int64(o.targetReducers)
	var (
		b        int
		comm     float64
		reducers int64
	)
	switch st {
	case StrategyTrianglePartition:
		b = triangle.BucketsForReducers(k, triangle.PartitionReducers)
		if b < 3 {
			b = 3
		}
		comm = triangle.PartitionCommPerEdge(b)
		reducers = triangle.PartitionReducers(b)
	case StrategyTriangleMultiway:
		b = triangle.BucketsForReducers(k, triangle.MultiwayReducers)
		comm = triangle.MultiwayCommPerEdge(b)
		reducers = triangle.MultiwayReducers(b)
	case StrategyTriangleBucketOrdered:
		b = triangle.BucketsForReducers(k, triangle.BucketOrderedReducers)
		comm = triangle.BucketOrderedCommPerEdge(b)
		reducers = triangle.BucketOrderedReducers(b)
	}
	if o.buckets > 0 {
		b = o.buckets
		switch st {
		case StrategyTrianglePartition:
			if b < 3 {
				return Candidate{Strategy: st, Reason: fmt.Sprintf("Partition needs b >= 3, got %d", b)}
			}
			comm, reducers = triangle.PartitionCommPerEdge(b), triangle.PartitionReducers(b)
		case StrategyTriangleMultiway:
			comm, reducers = triangle.MultiwayCommPerEdge(b), triangle.MultiwayReducers(b)
		case StrategyTriangleBucketOrdered:
			comm, reducers = triangle.BucketOrderedCommPerEdge(b), triangle.BucketOrderedReducers(b)
		}
	}
	return finishCandidate(Candidate{
		Strategy:    st,
		Viable:      true,
		Buckets:     b,
		Shares:      uniformIntShares(3, b),
		Jobs:        1,
		Rounds:      1,
		Reducers:    reducers,
		CommPerEdge: comm,
	}, m)
}

// twoRoundCandidate costs the cascade baseline from the data graph itself:
// round 1 ships 2 pairs per edge, round 2 ships every materialized wedge
// plus each edge once, so the total is 3m + W with W the exact wedge count
// (an O(n + m) scan — the planner pays it to expose how badly the cascade
// loses on skewed graphs). The exact integer 3m + W is EstComm directly —
// round-tripping it through the per-edge float (as finishCandidate does for
// the model-priced candidates) loses ulps on large graphs and could flip
// Auto tie-breaks; CommPerEdge is derived for display instead.
func twoRoundCandidate(g *Graph, s *Sample, m int64) Candidate {
	if !isTriangleSample(s) {
		return Candidate{Strategy: StrategyTwoRound, Reason: "the two-round cascade supports the triangle sample only"}
	}
	w := tworound.WedgeCount(g)
	c := Candidate{
		Strategy: StrategyTwoRound,
		Viable:   true,
		Jobs:     2,
		Rounds:   2,
		Reducers: int64(g.NumNodes()) + m + w, // upper bound on distinct keys
		EstComm:  3*m + w,
	}
	c.EstShuffleBytes = c.EstComm * planPairOverhead
	if m > 0 {
		c.CommPerEdge = float64(c.EstComm) / float64(m)
	}
	return c
}

// isTriangleSample reports whether s is the triangle (the connected
// 2-regular sample on three nodes).
func isTriangleSample(s *Sample) bool {
	d, reg := s.IsRegular()
	return s.P() == 3 && reg && d == 2
}

func uniformIntShares(p, b int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = b
	}
	return out
}

// Explain renders the plan: the chosen strategy with its predicted shape
// (buckets/shares, reducers, jobs, communication, spill) followed by the
// full candidate table in planner order, the chosen row starred.
func (p *QueryPlan) Explain() string {
	var sb strings.Builder
	g, s := p.graph, p.sample
	fmt.Fprintf(&sb, "query: enumerate %v (p=%d) in graph n=%d m=%d\n",
		s, s.P(), g.NumNodes(), g.NumEdges())
	fmt.Fprintf(&sb, "plan: %v", p.Strategy)
	if p.opts.strategy == StrategyAuto {
		if p.Adaptive {
			sb.WriteString(" (auto: lowest skew-adjusted cost from load probes)")
		} else {
			sb.WriteString(" (auto: lowest estimated communication)")
		}
	}
	sb.WriteByte('\n')
	c := p.Chosen
	if c.Buckets > 0 {
		fmt.Fprintf(&sb, "  buckets: b=%d\n", c.Buckets)
	}
	if len(c.Shares) > 0 {
		fmt.Fprintf(&sb, "  shares: %v\n", c.Shares)
	}
	for i, js := range c.JobShares {
		fmt.Fprintf(&sb, "  job %d shares: %v\n", i+1, js)
	}
	fmt.Fprintf(&sb, "  jobs: %d, rounds: %d, est. reducers: %d\n", c.Jobs, c.Rounds, c.Reducers)
	fmt.Fprintf(&sb, "  est. communication: %.2f pairs/edge, %d total\n", c.CommPerEdge, c.EstComm)
	fmt.Fprintf(&sb, "  CQs: %d\n", p.NumCQs)
	if p.MemoryBudget > 0 {
		verdict := "fits in memory"
		if p.PredictedSpill {
			verdict = "will spill to disk"
		}
		fmt.Fprintf(&sb, "  memory: est. shuffle %d bytes vs budget %d — predicted: %s\n",
			c.EstShuffleBytes, p.MemoryBudget, verdict)
	}
	sb.WriteString("candidates:\n")
	for _, cand := range p.Candidates {
		marker := " "
		if cand.Strategy == p.Strategy {
			marker = "*"
		}
		if !cand.Viable {
			fmt.Fprintf(&sb, "  %s %-24v not viable: %s\n", marker, cand.Strategy, cand.Reason)
			continue
		}
		fmt.Fprintf(&sb, "  %s %-24v %10.2f pairs/edge  %12d total  reducers=%d",
			marker, cand.Strategy, cand.CommPerEdge, cand.EstComm, cand.Reducers)
		if cand.Probed {
			fmt.Fprintf(&sb, "  adjusted=%d", cand.AdjustedCost)
		}
		sb.WriteByte('\n')
	}
	if p.Adaptive && len(p.Probes) > 0 {
		fmt.Fprintf(&sb, "probes (adaptive, skew threshold %.1f):\n", p.SkewThreshold)
		for _, pr := range p.Probes {
			marker := " "
			if pr.Applied {
				marker = "*"
			}
			config := ""
			switch {
			case pr.Buckets > 0:
				config = fmt.Sprintf("b=%d", pr.Buckets)
			case len(pr.Shares) > 0:
				config = fmt.Sprintf("shares=%v", pr.Shares)
			}
			fmt.Fprintf(&sb, "  %s %-24v %-12s comm=%-10d keys=%-8d maxload=%-8d mean=%-9.1f skew=%-7.2f adjusted=%d\n",
				marker, pr.Strategy, config, pr.Comm, pr.Keys, pr.MaxLoad, pr.MeanLoad, pr.Skew, pr.AdjustedCost)
		}
	}
	return sb.String()
}
