package subgraphmr

import (
	"context"
	"testing"
)

// BenchmarkStreamingVsMaterialized pins the overhead of the three delivery
// modes on the same plan: Run (materialize [][]Node), Stream (serialized
// callback, no materialization), and Instances (iterator bridged over a
// channel — the most convenient and the most synchronization-heavy). The
// streaming modes trade a per-instance handoff for O(1) result memory.
func BenchmarkStreamingVsMaterialized(b *testing.B) {
	ctx := context.Background()
	g := Gnm(800, 4000, 3)
	plan, err := Plan(g, Triangle(), WithTargetReducers(256), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("run-materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := Run(ctx, plan)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Instances) == 0 {
				b.Fatal("no instances")
			}
		}
	})
	b.Run("stream-callback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var n int64
			if _, err := Stream(ctx, plan, func([]Node) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("no instances")
			}
		}
	})
	b.Run("instances-iterator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var n int64
			for _, err := range Instances(ctx, plan) {
				if err != nil {
					b.Fatal(err)
				}
				n++
			}
			if n == 0 {
				b.Fatal("no instances")
			}
		}
	})
	b.Run("instances-first-10", func(b *testing.B) {
		// The early-exit payoff: take 10 instances and tear down.
		for i := 0; i < b.N; i++ {
			var n int64
			for _, err := range Instances(ctx, plan) {
				if err != nil {
					b.Fatal(err)
				}
				if n++; n == 10 {
					break
				}
			}
		}
	})
}
