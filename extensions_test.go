package subgraphmr

import (
	"math"
	"testing"
)

func TestFacadeDirected(t *testing.T) {
	g := RandomDiGraph(20, 100, 2, 1)
	pt := DirectedCyclePattern(3, 0)
	res, err := EnumerateDirected(g, pt, DirectedOptions{Buckets: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(DirectedBruteForce(g, pt)); len(res.Instances) != want {
		t.Errorf("directed triangles: %d, oracle %d", len(res.Instances), want)
	}
	// A custom labeled pattern through the facade.
	custom, err := NewDiPattern(3, []PatternArc{
		{From: 0, To: 1, Label: LabelKnows},
		{From: 1, To: 2, Label: LabelBuysFrom},
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := EnumerateDirected(g, custom, DirectedOptions{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(DirectedBruteForce(g, custom)); len(res2.Instances) != want {
		t.Errorf("custom pattern: %d, oracle %d", len(res2.Instances), want)
	}
}

func TestFacadeDirectedBuilder(t *testing.T) {
	b := NewDiGraphBuilder(3)
	b.AddArc(0, 1, LabelKnows)
	b.AddArc(1, 2, LabelKnows)
	b.AddArc(2, 0, LabelKnows)
	g := b.Graph()
	res, err := EnumerateDirected(g, DirectedCyclePattern(3, LabelKnows), DirectedOptions{Buckets: 2})
	if err != nil || len(res.Instances) != 1 {
		t.Errorf("directed triangle ring: %v, %d instances", err, len(res.Instances))
	}
	// The reversed ring is absent.
	rev := DirectedCyclePattern(3, LabelKnows)
	_ = rev
	if g.HasArc(1, 0, LabelKnows) {
		t.Error("reverse arc should not exist")
	}
}

func TestFacadeTwoRound(t *testing.T) {
	g := Gnm(40, 170, 2)
	res := TwoRoundTriangles(g)
	if res.Count() != CountTriangles(g) {
		t.Errorf("cascade count %d, serial %d", res.Count(), CountTriangles(g))
	}
	if res.TotalComm() != 3*int64(g.NumEdges())+res.Wedges {
		t.Error("cascade communication accounting off")
	}
	if res.Wedges != WedgeCount(g) {
		t.Error("wedge count mismatch")
	}
}

func TestFacadeApprox(t *testing.T) {
	g := Gnm(150, 1800, 3)
	exact := float64(CountTriangles(g))
	est := DoulionTriangles(g, 0.5, 40, 9)
	if math.Abs(est-exact) > 0.2*exact {
		t.Errorf("doulion %v vs exact %v", est, exact)
	}
	p3 := float64(len(BruteForce(Gnm(25, 60, 1), PathSample(3))))
	cc := ColorCodingPaths(Gnm(25, 60, 1), 3, 300, 4)
	if math.Abs(cc-p3) > 0.25*p3+2 {
		t.Errorf("color coding %v vs exact %v", cc, p3)
	}
}

func TestFacadeThreatRing(t *testing.T) {
	// Build the Section 1.1 scenario end to end through the facade.
	b := NewDiGraphBuilder(10)
	for i := Node(0); i < 4; i++ {
		b.AddArc(i, 9, LabelBookedOn)       // all booked on flight 9
		b.AddArc(i, (i+1)%4, LabelBuysFrom) // buys-from ring
		b.AddArc(i, (i+2)%4+4, LabelKnows)  // noise
	}
	g := b.Graph()
	res, err := EnumerateDirected(g, ThreatRingPattern(4), DirectedOptions{Buckets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Errorf("threat ring instances = %d, want exactly 1", len(res.Instances))
	}
}
