package subgraphmr

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"subgraphmr/internal/distrib"
	"subgraphmr/internal/graph"
	"subgraphmr/internal/mapreduce"
	"subgraphmr/internal/sample"
)

// encodedGraph memoizes the distrib wire encoding of a plan's data graph,
// so repeated distributed runs of a cached plan serialize the graph once
// instead of once per Run. Held behind a pointer on QueryPlan: plan copies
// share it, and the Once is never copied after first use.
type encodedGraph struct {
	once sync.Once
	data []byte
}

// distGraphPayload returns the frameGraph payload for the plan's data
// graph, encoding it on first use. Plans not built by Plan (the worker's
// reconstructed plans have no enc) fall back to a direct encoding — they
// never coordinate a cluster, so the memo would be dead weight.
func (p *QueryPlan) distGraphPayload() []byte {
	if p.enc == nil {
		return distrib.EncodeGraph(p.graph.NumNodes(), p.graph.Edges())
	}
	p.enc.once.Do(func() {
		//lint:allow planmutate enc is a Plan-allocated memo slot; the write is sync.Once-guarded and idempotent
		p.enc.data = distrib.EncodeGraph(p.graph.NumNodes(), p.graph.Edges())
	})
	return p.enc.data
}

// Distributed execution routes Run/Stream/Instances through a
// coordinator/worker executor (internal/distrib) with no API change: the
// coordinator slices the distributed key space across worker processes,
// each worker replays the same plan over the replicated graph keeping only
// the reducer keys it owns, and the instance streams are unioned. Every
// strategy emits each instance at exactly one reducer key (the ownership
// filters of Sections 2 and 4), so the union is exactly-once by
// construction — the fault-injection difftests pin this bit-identically
// against local execution.

// FaultMode selects an injectable worker failure for testing distributed
// runs; see the constants.
type FaultMode = distrib.FaultMode

const (
	// FaultNone injects nothing (the zero value).
	FaultNone = distrib.FaultNone
	// FaultKill SIGKILLs the target worker process mid-stream (spawned
	// workers; dialed workers get their connection closed instead).
	FaultKill = distrib.FaultKill
	// FaultDrop closes the coordinator's connection to the target worker
	// mid-stream; the process survives.
	FaultDrop = distrib.FaultDrop
	// FaultStall silences the target worker mid-stream until the
	// coordinator's per-frame read deadline declares it dead.
	FaultStall = distrib.FaultStall
)

// FaultSpec describes one injected worker failure: the mode, the target
// worker index (-1 for kill/drop targets the first worker that streams an
// instance), and how many of its instances to let through first.
type FaultSpec = distrib.Fault

// WithWorkers routes execution through already-listening worker processes
// (started with ServeWorker, e.g. `sgmr -serve-worker`). Unreachable
// addresses degrade the run to the reachable subset; with none reachable
// the plan runs locally. Plan signatures are unchanged — planning stays
// local, only Run/Stream/Instances execution is distributed.
func WithWorkers(addrs []string) Option {
	return func(o *planOpts) { o.workers = append([]string(nil), addrs...) }
}

// WithDistributed spawns n local worker processes by re-executing the
// current binary and routes execution through them; the processes are torn
// down when the run finishes (or is cancelled, or the consumer breaks out
// of Instances). The binary must call MaybeWorkerProcess early in main (or
// TestMain) for the re-exec to become a worker.
func WithDistributed(n int) Option {
	return func(o *planOpts) { o.spawnWorkers = n }
}

// WithWorkerTimeout sets the coordinator's per-frame read deadline: a
// worker that sends nothing for this long is declared dead and its
// partitions are retried on a survivor (default 15s).
func WithWorkerTimeout(d time.Duration) Option {
	return func(o *planOpts) { o.workerTimeout = d }
}

// WithFaultInjection injects one worker failure into a distributed run —
// the hook behind the fault-injection difftests and CI's forced
// worker-kill pass. Production runs leave it unset.
func WithFaultInjection(f FaultSpec) Option {
	return func(o *planOpts) { o.fault = f }
}

func (o planOpts) isDistributed() bool {
	return len(o.workers) > 0 || o.spawnWorkers > 0
}

// ServeWorker serves distributed jobs on ln until ctx is cancelled: each
// coordinator connection ships the replicated graph once, then a sequence
// of jobs, each answered with length-prefixed instance frames and a
// committing done-frame. This is what `sgmr -serve-worker` runs.
func ServeWorker(ctx context.Context, ln net.Listener) error {
	return distrib.Serve(ctx, ln, executeWorkerJob)
}

// MaybeWorkerProcess turns a process spawned by WithDistributed into a
// worker: when the spawn sentinel is set it serves jobs until the parent
// closes its stdin, then reports true (the caller should exit). Call it at
// the top of main or TestMain.
func MaybeWorkerProcess() bool {
	if !distrib.IsSpawnedWorker() {
		return false
	}
	distrib.RunSpawnedWorker(executeWorkerJob)
	return true
}

// executeWorkerJob is the Executor the root package injects into distrib:
// it reconstructs the plan a coordinator shipped and runs it through the
// same local dispatch Run/Stream use, with the ownership filter installed
// so only the owned key-space slices are computed and shipped. Adaptive
// re-planning stays off — a worker that re-planned mid-run would change
// its reducer keys and desynchronize the cluster's ownership filter.
func executeWorkerJob(ctx context.Context, g *graph.Graph, req *distrib.JobRequest, emit func([]graph.Node) bool) (*distrib.JobResult, error) {
	s, err := sample.New(req.SampleP, req.SampleEdges, req.SampleNames...)
	if err != nil {
		return nil, err
	}
	st := PlanStrategy(req.Strategy)
	o := defaultPlanOpts()
	o.strategy = st
	if req.TargetReducers > 0 {
		o.targetReducers = req.TargetReducers
	}
	o.cycleCQs = req.CycleCQs
	o.seed = req.Seed
	o.parallelism = req.Parallelism
	o.partitions = req.Partitions
	o.memoryBudget = req.MemoryBudget
	o.spillDir = req.SpillDir
	o.dist = mapreduce.NewDistFilter(req.DistTotal, req.Owned)
	p := &QueryPlan{
		Strategy: st,
		Chosen:   Candidate{Strategy: st, Viable: true, Buckets: req.Buckets, CommPerEdge: req.PredictedCommPerEdge},
		graph:    g,
		sample:   s,
		opts:     o,
	}
	res, err := runLocalStream(ctx, p, func(phi []Node) bool { return emit(phi) })
	if err != nil {
		return nil, err
	}
	return &distrib.JobResult{Jobs: res.Jobs, Count: res.Count, NumCQs: res.NumCQs}, nil
}

// distKeyPartitions picks the total key-space slice count for a cluster of
// w workers: a few slices per worker, so a failed worker's share is
// retried at sub-worker granularity, capped to keep the per-job gob
// headers small.
func distKeyPartitions(w int) int {
	d := 4 * w
	if d > 64 {
		d = 64
	}
	return d
}

// connectCluster builds the cluster the options describe.
func connectCluster(ctx context.Context, o planOpts) (*distrib.Cluster, error) {
	var (
		cl  *distrib.Cluster
		err error
	)
	if len(o.workers) > 0 {
		cl, err = distrib.Dial(ctx, o.workers)
	} else {
		cl, err = distrib.SpawnLocal(ctx, o.spawnWorkers)
	}
	if err != nil {
		return nil, err
	}
	cl.Timeout = o.workerTimeout
	cl.Fault = o.fault
	return cl, nil
}

// runDistributed is the coordinator: it assigns key-space slices to
// workers, streams their committed instances into yield (or materializes
// them), merges the per-worker job statistics, retries a failed worker's
// slices on survivors (bounded, with backoff), and degrades whatever
// cannot finish remotely to filtered local execution. A nil yield
// materializes (honoring WithCountOnly); a non-nil yield streams with the
// usual Stream contract.
func runDistributed(ctx context.Context, p *QueryPlan, yield func([]Node) bool) (*Result, error) {
	cl, err := connectCluster(ctx, p.opts)
	if err != nil {
		// Graceful degradation: with no cluster at all the whole plan runs
		// locally, recorded in the summary entry so the fallback is
		// auditable.
		res, lerr := runLocalFallback(ctx, p, yield)
		if lerr != nil {
			return nil, lerr
		}
		res.Jobs = append(res.Jobs, JobStats{
			Label: fmt.Sprintf("distributed: degraded to local execution (%v)", err),
		})
		return res, nil
	}
	defer cl.Close()

	w := cl.NumWorkers()
	d := distKeyPartitions(w)
	base := distrib.JobRequest{
		Strategy:             int(p.Strategy),
		Buckets:              p.Chosen.Buckets,
		PredictedCommPerEdge: p.Chosen.CommPerEdge,
		TargetReducers:       p.opts.targetReducers,
		CycleCQs:             p.opts.cycleCQs,
		Seed:                 p.opts.seed,
		Parallelism:          p.opts.parallelism,
		Partitions:           p.opts.partitions,
		MemoryBudget:         p.opts.memoryBudget,
		SpillDir:             p.opts.spillDir,
		SampleP:              p.sample.P(),
		SampleEdges:          p.sample.Edges(),
		SampleNames:          p.sample.Names(),
	}
	payload := p.distGraphPayload()

	res := &Result{}
	materialize := yield == nil && !p.opts.countOnly
	var jobs []JobStats
	accept := func(phi []Node) bool {
		if yield != nil {
			if !yield(phi) {
				return false
			}
		} else if materialize {
			res.Instances = append(res.Instances, phi)
		}
		res.Count++
		return true
	}
	commit := func(batch [][]graph.Node, jr *distrib.JobResult) bool {
		for _, phi := range batch {
			if !accept(phi) {
				return false
			}
		}
		jobs = mergeJobStats(jobs, jr.Jobs)
		if jr.NumCQs > res.NumCQs {
			res.NumCQs = jr.NumCQs
		}
		return true
	}

	summary := func(retried int) JobStats {
		return JobStats{
			Label:             fmt.Sprintf("distributed: %d workers, %d key partitions", w, d),
			RetriedPartitions: retried,
		}
	}
	retried, unfinished, err := cl.Enumerate(ctx, payload, base, d, commit)
	if err == distrib.ErrStopped {
		// The consumer broke out: same contract as Stream's early stop —
		// partial metrics, nil error.
		res.Jobs = append(jobs, summary(retried))
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	if len(unfinished) > 0 {
		// Last-resort degradation: the partitions no worker could finish
		// run locally under the same ownership filter — never the full
		// plan, which would duplicate the committed instances.
		//
		// Copy-before-mutate: p may be executing concurrently on other
		// goroutines (shared cached plan), so the variant configuration is
		// written to a copy, never to p.opts in place.
		retried += len(unfinished)
		lp := *p
		lp.opts.workers, lp.opts.spawnWorkers = nil, 0
		lp.opts.adaptive = false
		lp.opts.dist = mapreduce.NewDistFilter(d, unfinished)
		lres, lerr := runLocalStream(ctx, &lp, accept)
		if lerr != nil {
			return nil, lerr
		}
		jobs = mergeJobStats(jobs, lres.Jobs)
		if lres.NumCQs > res.NumCQs {
			res.NumCQs = lres.NumCQs
		}
	}
	res.Jobs = append(jobs, summary(retried))
	return res, nil
}

// runLocalFallback runs the whole plan in-process when no worker could be
// reached, honoring whichever mode (materializing or streaming) the caller
// was in.
func runLocalFallback(ctx context.Context, p *QueryPlan, yield func([]Node) bool) (*Result, error) {
	// Copy-before-mutate, as above: never write p.opts in place.
	lp := *p
	lp.opts.workers, lp.opts.spawnWorkers = nil, 0
	if yield == nil {
		return runLocalRun(ctx, &lp)
	}
	return runLocalStream(ctx, &lp, yield)
}

// mergeJobStats folds one worker-job's per-round statistics into the
// coordinator's accumulator by round index: every worker runs the same
// rounds (the plan is static), so metrics sum per round — pairs, keys,
// work and outputs add, the max reducer input takes the max — and for the
// single-round filtered strategies the merged totals equal a local run's
// exactly (each key is counted by precisely one owner). Labels and
// predictions are identical across workers; the first commit's are kept.
func mergeJobStats(dst []JobStats, src []JobStats) []JobStats {
	for i, js := range src {
		if i < len(dst) {
			dst[i].Metrics.Add(js.Metrics)
			dst[i].ObservedSkew = dst[i].Metrics.Skew()
		} else {
			dst = append(dst, js)
		}
	}
	return dst
}
