package subgraphmr

import (
	"reflect"
	"testing"
	"time"
)

// TestQueryKeyCoversPlanOpts is the aliasing guard: every planOpts field
// must have an explicit cache-key decision — encoded by QueryKey (listed
// in queryKeyIncludedFields) or exempted with a reason
// (queryKeyExemptFields). Adding an option without deciding fails here,
// so a new knob can never silently alias plan-cache entries.
func TestQueryKeyCoversPlanOpts(t *testing.T) {
	typ := reflect.TypeOf(planOpts{})
	included := make(map[string]bool, len(queryKeyIncludedFields))
	for _, f := range queryKeyIncludedFields {
		included[f] = true
	}
	seen := make(map[string]bool)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		seen[name] = true
		_, exempt := queryKeyExemptFields[name]
		switch {
		case included[name] && exempt:
			t.Errorf("planOpts.%s is both included in and exempted from QueryKey — pick one", name)
		case !included[name] && !exempt:
			t.Errorf("planOpts.%s has no cache-key decision: add it to QueryKey + queryKeyIncludedFields, or exempt it in queryKeyExemptFields with the reason", name)
		}
	}
	// No stale decisions for fields that no longer exist.
	for _, f := range queryKeyIncludedFields {
		if !seen[f] {
			t.Errorf("queryKeyIncludedFields lists %q, which is not a planOpts field", f)
		}
	}
	for f := range queryKeyExemptFields {
		if !seen[f] {
			t.Errorf("queryKeyExemptFields lists %q, which is not a planOpts field", f)
		}
	}
}

// TestQueryKeySensitivity drives every included field through a
// perturbation and asserts the key changes — proving the fields declared
// included really reach the key (the decision list cannot drift from the
// implementation).
func TestQueryKeySensitivity(t *testing.T) {
	s := Triangle()
	base := QueryKey("g1", s)
	perturb := map[string][]Option{
		"strategy":       {WithStrategy(StrategyTriangleMultiway)},
		"targetReducers": {WithTargetReducers(7)},
		"buckets":        {WithBuckets(5)},
		"cycleCQs":       {WithCycleCQs()},
		"countOnly":      {WithCountOnly()},
		"seed":           {WithSeed(99)},
		"parallelism":    {WithParallelism(2)},
		"partitions":     {WithPartitions(3)},
		"memoryBudget":   {WithMemoryBudget(4096)},
		"spillDir":       {WithSpillDir("/tmp/elsewhere")},
		"adaptive":       {WithAdaptive()},
		"skewThreshold":  {WithSkewThreshold(2.5)},
		"workers":        {WithWorkers([]string{"127.0.0.1:1"})},
		"spawnWorkers":   {WithDistributed(2)},
		"workerTimeout":  {WithWorkerTimeout(time.Second)},
		"fault":          {WithFaultInjection(FaultSpec{Mode: FaultDrop, Worker: 1})},
	}
	for _, field := range queryKeyIncludedFields {
		opts, ok := perturb[field]
		if !ok {
			t.Errorf("no perturbation registered for included field %q — register one so its key segment is verified", field)
			continue
		}
		if got := QueryKey("g1", s, opts...); got == base {
			t.Errorf("perturbing %s did not change the key %q", field, base)
		}
	}

	// Graph identity and sample structure are part of the key too.
	if QueryKey("g2", s) == base {
		t.Error("graph id not keyed")
	}
	if QueryKey("g1", Square()) == base {
		t.Error("sample structure not keyed")
	}
	// Variable names are documented as excluded: same structure, same key.
	named, err := NewSample(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if QueryKey("g1", named) != base {
		t.Error("sample variable names leaked into the key")
	}
}

// TestQueryKeyNormalizesDefaultReducers mirrors Plan's k<=0 fallback: an
// explicit default budget and an unset one must share a cache entry.
func TestQueryKeyNormalizesDefaultReducers(t *testing.T) {
	s := Triangle()
	if QueryKey("g", s) != QueryKey("g", s, WithTargetReducers(0)) {
		t.Error("k=0 and unset diverge")
	}
	if QueryKey("g", s) != QueryKey("g", s, WithTargetReducers(defaultTargetReducers)) {
		t.Error("k=default and unset diverge")
	}
	if QueryKey("g", s) == QueryKey("g", s, WithTargetReducers(defaultTargetReducers+1)) {
		t.Error("non-default k did not change the key")
	}
}
