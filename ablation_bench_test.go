// Ablation benchmarks for the design choices DESIGN.md calls out: the
// one-round multiway join versus the conventional two-round cascade, the
// Section 5 cycle CQs versus the general Section 3 pipeline, approximate
// counting versus exact enumeration, and the directed/labeled extension.
package subgraphmr

import (
	"fmt"
	"math"
	"testing"
)

// BenchmarkAblationCascadeVsOneRound quantifies the paper's introduction
// claim: the cascade of two-way joins ships the materialized wedge
// relation, which explodes when hub neighborhoods straddle the node order.
func BenchmarkAblationCascadeVsOneRound(b *testing.B) {
	// Random graph plus a mid-id hub.
	base := Gnm(1500, 4000, 3)
	bld := NewGraphBuilder(1500)
	for _, e := range base.Edges() {
		bld.AddEdge(e.U, e.V)
	}
	for v := Node(0); v < 1500; v++ {
		if v != 750 {
			bld.AddEdge(750, v)
		}
	}
	g := bld.Graph()

	b.Run("cascade-two-rounds", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			res := TwoRoundTriangles(g)
			total = res.TotalComm()
		}
		b.ReportMetric(float64(total)/float64(g.NumEdges()), "comm/edge")
		b.ReportMetric(float64(WedgeCount(g)), "wedges")
	})
	b.Run("one-round-bucketordered", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			res, err := TriangleBucketOrdered(g, 10, 7)
			if err != nil {
				b.Fatal(err)
			}
			total = res.Metrics.KeyValuePairs
		}
		b.ReportMetric(float64(total)/float64(g.NumEdges()), "comm/edge")
	})
}

// BenchmarkAblationCycleCQs compares the Section 5 run-sequence CQs with
// the general Section 3 pipeline for cycle samples: identical instances
// and communication, fewer CQs and less reducer work.
func BenchmarkAblationCycleCQs(b *testing.B) {
	g := Gnm(300, 900, 9)
	for _, p := range []int{5, 6} {
		for _, useCycle := range []bool{false, true} {
			name := fmt.Sprintf("C%d/general", p)
			if useCycle {
				name = fmt.Sprintf("C%d/run-sequence", p)
			}
			b.Run(name, func(b *testing.B) {
				var res *Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = Enumerate(g, CycleSample(p), Options{
						Strategy:    BucketOriented,
						Buckets:     4,
						UseCycleCQs: useCycle,
						Seed:        2,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.NumCQs), "CQs")
				b.ReportMetric(float64(res.TotalReducerWork()), "reducer_work")
				b.ReportMetric(float64(len(res.Instances)), "instances")
			})
		}
	}
}

// BenchmarkAblationApproxVsExact positions the related-work baselines:
// Doulion trades accuracy for time; color coding estimates path counts.
func BenchmarkAblationApproxVsExact(b *testing.B) {
	g := Gnm(1200, 14000, 5)
	exact := float64(CountTriangles(g))
	b.Run("exact-serial", func(b *testing.B) {
		var n int64
		for i := 0; i < b.N; i++ {
			n = CountTriangles(g)
		}
		b.ReportMetric(float64(n), "triangles")
		b.ReportMetric(0, "rel_err")
	})
	for _, q := range []float64{0.5, 0.2} {
		b.Run(fmt.Sprintf("doulion-q=%.1f", q), func(b *testing.B) {
			var est float64
			for i := 0; i < b.N; i++ {
				est = DoulionTriangles(g, q, 1, int64(i)+1)
			}
			b.ReportMetric(est, "triangles")
			b.ReportMetric(math.Abs(est-exact)/exact, "rel_err")
		})
	}
}

// BenchmarkAblationDirected measures the directed/labeled extension: the
// bucket scheme's communication per arc is the same C(b+p-3, p-2) shape.
func BenchmarkAblationDirected(b *testing.B) {
	g := RandomDiGraph(800, 6000, 3, 7)
	for _, p := range []int{3, 4} {
		b.Run(fmt.Sprintf("directed-C%d", p), func(b *testing.B) {
			var res *DirectedResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = EnumerateDirected(g, DirectedCyclePattern(p, 0), DirectedOptions{Buckets: 5, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Metrics.KeyValuePairs)/float64(g.NumArcs()), "comm/arc")
			b.ReportMetric(float64(len(res.Instances)), "instances")
		})
	}
}

// BenchmarkAblationShareRounding measures the integer-rounding gap: the
// predicted cost at rounded shares versus the fractional optimum.
func BenchmarkAblationShareRounding(b *testing.B) {
	g := Gnm(300, 1200, 5)
	for _, k := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("lollipop-k=%d", k), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Enumerate(g, Lollipop(), Options{
					Strategy: VariableOriented, TargetReducers: k, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
			}
			job := res.Jobs[0]
			b.ReportMetric(job.PredictedCommPerEdge, "integer_cost")
			b.ReportMetric(job.OptimalCommPerEdge, "fractional_cost")
			b.ReportMetric(job.PredictedCommPerEdge/job.OptimalCommPerEdge, "rounding_gap")
		})
	}
}

// BenchmarkAblationEnginePartitioning measures engine scaling with worker
// parallelism on a fixed triangle job.
func BenchmarkAblationEnginePartitioning(b *testing.B) {
	g := Gnm(2000, 16000, 11)
	for _, par := range []int{1, 4, 0} { // 0 = GOMAXPROCS
		name := fmt.Sprintf("workers=%d", par)
		if par == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Enumerate(g, Triangle(), Options{
					Buckets: 8, Parallelism: par, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
