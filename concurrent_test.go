package subgraphmr

import (
	"context"
	"sync"
	"testing"
)

// TestSharedPlanConcurrentExecution pins the shared-plan mutation audit:
// one *QueryPlan is executed by many goroutines at once through Run,
// Stream and Instances, and every call must return the exact oracle
// count. Run under -race (CI's race job covers this package), any
// execution path that mutates p.opts or p.Chosen in place — instead of
// the copy-before-mutate rule — fails here.
func TestSharedPlanConcurrentExecution(t *testing.T) {
	ctx := context.Background()
	g := Gnm(120, 500, 9)
	want := CountTriangles(g)

	cases := []struct {
		name string
		opts []Option
	}{
		{"bucket", []Option{WithStrategy(StrategyBucketOriented)}},
		{"variable", []Option{WithStrategy(StrategyVariableOriented)}},
		{"cq", []Option{WithStrategy(StrategyCQOriented)}},
		{"decomposed", []Option{WithStrategy(StrategyDecomposed)}},
		{"tri-bucket", []Option{WithStrategy(StrategyTriangleBucketOrdered)}},
		{"cascade", []Option{WithStrategy(StrategyTwoRound)}},
		// The adaptive cascade exercises the mid-query re-plan path, which
		// reads p.Candidates while other goroutines execute the same plan.
		{"cascade-adaptive", []Option{WithStrategy(StrategyTwoRound), WithAdaptive(), WithSkewThreshold(0.5)}},
		// A spill-path run shares the plan's spill configuration.
		{"bucket-spill", []Option{WithStrategy(StrategyBucketOriented), WithMemoryBudget(2048), WithSpillDir(t.TempDir())}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := Plan(g, Triangle(), append([]Option{
				WithTargetReducers(64), WithSeed(3),
			}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			const per = 4 // goroutines per verb
			var wg sync.WaitGroup
			errs := make(chan error, 3*per)
			counts := make(chan int64, 3*per)
			for i := 0; i < per; i++ {
				wg.Add(3)
				go func() {
					defer wg.Done()
					res, err := Run(ctx, plan)
					if err != nil {
						errs <- err
						return
					}
					counts <- res.Count
				}()
				go func() {
					defer wg.Done()
					var n int64
					if _, err := Stream(ctx, plan, func([]Node) bool { n++; return true }); err != nil {
						errs <- err
						return
					}
					counts <- n
				}()
				go func() {
					defer wg.Done()
					var n int64
					for _, err := range Instances(ctx, plan) {
						if err != nil {
							errs <- err
							return
						}
						n++
					}
					counts <- n
				}()
			}
			wg.Wait()
			close(errs)
			close(counts)
			for err := range errs {
				t.Fatal(err)
			}
			for n := range counts {
				if n != want {
					t.Fatalf("concurrent execution returned %d instances, oracle %d", n, want)
				}
			}
		})
	}
}

// TestSharedPlanConcurrentDistributed drives one shared plan through
// concurrent distributed runs (spawned worker processes) alongside local
// Stream calls on the same plan — the coordinator path builds variant
// configurations (degradation, fallback) and must copy the plan rather
// than write p.opts in place; the memoized graph payload is hit from all
// coordinators at once.
func TestSharedPlanConcurrentDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	ctx := context.Background()
	g := Gnm(60, 400, 3)
	want := CountTriangles(g)
	plan, err := Plan(g, Triangle(),
		WithStrategy(StrategyTriangleBucketOrdered),
		WithTargetReducers(64), WithSeed(1), WithDistributed(2))
	if err != nil {
		t.Fatal(err)
	}
	const runs = 3
	var wg sync.WaitGroup
	errs := make(chan error, 2*runs)
	counts := make(chan int64, 2*runs)
	for i := 0; i < runs; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			res, err := Run(ctx, plan)
			if err != nil {
				errs <- err
				return
			}
			counts <- res.Count
		}()
		go func() {
			defer wg.Done()
			// A concurrent *local* execution of the same distributed plan:
			// the worker-spawning path and the local path must not fight
			// over shared plan state. Local execution of a distributed plan
			// goes through the coordinator too, so use the fallback shape —
			// a copied plan, as the rule requires.
			lp := *plan
			lp.opts.workers, lp.opts.spawnWorkers = nil, 0
			var n int64
			if _, err := Stream(ctx, &lp, func([]Node) bool { n++; return true }); err != nil {
				errs <- err
				return
			}
			counts <- n
		}()
	}
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	for n := range counts {
		if n != want {
			t.Fatalf("got %d instances, oracle %d", n, want)
		}
	}
	waitForNoSpawned(t)
}
