package subgraphmr

import (
	"context"
	"strings"
	"testing"

	"subgraphmr/internal/graph"
)

// hubGraph is the planted-hub skew fixture (graph.PlantedHub, shared with
// difftest.HubGraph): the bucket-oriented mapper concentrates the hub's
// edges on the reducers whose multiset contains the hub's bucket.
func hubGraph(n, ringNodes int) *Graph {
	return graph.PlantedHub(n, ringNodes)
}

// TestAdaptiveFlipsOnPlantedHub is the acceptance scenario: on a seeded
// power-law-style graph with a planted hub, the bucket-oriented probe
// observes MaxLoad ≥ 4× the mean, and Plan(..., WithAdaptive()) selects a
// different configuration than the static plan (a different strategy, or a
// raised bucket count splitting the hot reducers). The probe table renders
// in Explain, and both plans enumerate the identical instance set.
func TestAdaptiveFlipsOnPlantedHub(t *testing.T) {
	g := hubGraph(1200, 300)
	opts := []Option{WithTargetReducers(1024), WithSeed(7)}

	static, err := Plan(g, Triangle(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Plan(g, Triangle(), append(opts, WithAdaptive())...)
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Adaptive || len(adaptive.Probes) == 0 {
		t.Fatalf("adaptive plan carries no probes: %+v", adaptive)
	}

	// The bucket-oriented probe at the static configuration must expose the
	// hub: max load at least 4× the mean.
	var bucketProbe *LoadProbe
	for i := range adaptive.Probes {
		pr := &adaptive.Probes[i]
		if pr.Strategy == StrategyBucketOriented && pr.Buckets == staticBuckets(static) {
			bucketProbe = pr
			break
		}
	}
	if bucketProbe == nil {
		t.Fatalf("no bucket-oriented probe at the static b=%d:\n%s", staticBuckets(static), adaptive.Explain())
	}
	if bucketProbe.Skew < 4 {
		t.Fatalf("planted hub should skew bucket-oriented ≥ 4× mean, observed %.2f (max=%d mean=%.1f)",
			bucketProbe.Skew, bucketProbe.MaxLoad, bucketProbe.MeanLoad)
	}

	if static.Strategy == adaptive.Strategy && static.Chosen.Buckets == adaptive.Chosen.Buckets {
		t.Errorf("adaptive plan kept the static configuration %v b=%d despite skew %.2f:\n%s",
			static.Strategy, static.Chosen.Buckets, bucketProbe.Skew, adaptive.Explain())
	}

	explain := adaptive.Explain()
	for _, want := range []string{"probes (adaptive", "maxload=", "skew=", "adjusted="} {
		if !strings.Contains(explain, want) {
			t.Errorf("Explain missing %q:\n%s", want, explain)
		}
	}

	// Both plans must enumerate the identical triangle set.
	want := CountTriangles(g)
	for name, plan := range map[string]*QueryPlan{"static": static, "adaptive": adaptive} {
		res, err := Run(context.Background(), plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Count != want {
			t.Errorf("%s (%v b=%d): %d triangles, oracle %d", name, plan.Strategy, plan.Chosen.Buckets, res.Count, want)
		}
	}
	t.Logf("static: %v b=%d est=%d; adaptive: %v b=%d adjusted=%d (bucket probe skew %.2f)",
		static.Strategy, static.Chosen.Buckets, static.Chosen.EstComm,
		adaptive.Strategy, adaptive.Chosen.Buckets, adaptive.Chosen.AdjustedCost, bucketProbe.Skew)
}

// staticBuckets extracts the static plan's bucket-oriented candidate b.
func staticBuckets(p *QueryPlan) int {
	for _, c := range p.Candidates {
		if c.Strategy == StrategyBucketOriented {
			return c.Buckets
		}
	}
	return 0
}

// TestAdaptiveCQReplansMidQuery forces the cq-oriented job sequence on a
// skewed graph with a threshold any real skew breaches: the first job's
// observed skew must raise the reducer budget for the remaining jobs,
// marking them Replanned — and the instance set must still match the
// oracle exactly (re-planning moves instances between reducers, never in
// or out of the result).
func TestAdaptiveCQReplansMidQuery(t *testing.T) {
	g := hubGraph(120, 60)
	s := Square()
	plan, err := Plan(g, s, WithStrategy(StrategyCQOriented), WithTargetReducers(64),
		WithSeed(3), WithAdaptive(), WithSkewThreshold(1.01))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) < 2 {
		t.Fatalf("cq-oriented ran %d jobs; the replan test needs a multi-job sequence", len(res.Jobs))
	}
	replanned := 0
	for _, j := range res.Jobs {
		if j.Replanned {
			replanned++
			if !strings.Contains(j.Label, "replanned k=") {
				t.Errorf("replanned job label %q does not record the revised budget", j.Label)
			}
			if j.TargetReducers <= 64 {
				t.Errorf("replanned job kept budget %d, want > 64", j.TargetReducers)
			}
		}
	}
	if replanned == 0 {
		t.Fatalf("no job replanned despite threshold 1.01; per-job skews: %v", jobSkews(res))
	}
	if want := int64(len(BruteForce(g, s))); res.Count != want {
		t.Errorf("replanned sequence found %d instances, oracle %d", res.Count, want)
	}
}

func jobSkews(res *Result) []float64 {
	out := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		out[i] = j.ObservedSkew
	}
	return out
}

// TestAdaptiveCascadeReplansMidQuery forces the two-round cascade with
// adaptive execution on the planted-hub graph: round 1's observed skew (the
// hub's degree against the mean) breaches the threshold, round 2 is
// abandoned, and the query finishes as the one-round bucket-ordered
// algorithm — recorded as a Replanned job, with the triangle set intact.
func TestAdaptiveCascadeReplansMidQuery(t *testing.T) {
	g := hubGraph(400, 200)
	plan, err := Plan(g, Triangle(), WithStrategy(StrategyTwoRound), WithTargetReducers(256),
		WithSeed(5), WithAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("replanned cascade reported %d jobs, want round 1 + the replanned job: %+v", len(res.Jobs), jobLabels(res))
	}
	last := res.Jobs[len(res.Jobs)-1]
	if !last.Replanned || !strings.Contains(last.Label, "replanned") {
		t.Errorf("final job %+v not marked as the mid-query replan", last.Label)
	}
	if res.Jobs[0].ObservedSkew <= plan.SkewThreshold {
		t.Errorf("round 1 skew %.2f did not breach threshold %.2f — fixture too uniform",
			res.Jobs[0].ObservedSkew, plan.SkewThreshold)
	}
	if want := CountTriangles(g); res.Count != want {
		t.Errorf("replanned cascade found %d triangles, oracle %d", res.Count, want)
	}

	// A uniform graph must NOT trigger the replan: the cascade runs its two
	// rounds as planned.
	ug := Gnm(200, 500, 9)
	uplan, err := Plan(ug, Triangle(), WithStrategy(StrategyTwoRound), WithAdaptive(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	ures, err := Run(context.Background(), uplan)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range ures.Jobs {
		if j.Replanned {
			t.Errorf("uniform graph triggered a cascade replan (round-1 skew %.2f): %v", ures.Jobs[0].ObservedSkew, jobLabels(ures))
		}
	}
	if want := CountTriangles(ug); ures.Count != want {
		t.Errorf("uniform cascade found %d triangles, oracle %d", ures.Count, want)
	}
}

func jobLabels(res *Result) []string {
	out := make([]string, len(res.Jobs))
	for i, j := range res.Jobs {
		out[i] = j.Label
	}
	return out
}

// TestAdaptiveStreamAndInstances checks the adaptive paths deliver through
// the streaming surfaces too: Stream on a replanned cascade and Instances
// on an adaptive auto plan both yield the full oracle set.
func TestAdaptiveStreamAndInstances(t *testing.T) {
	g := hubGraph(300, 150)
	want := CountTriangles(g)

	plan, err := Plan(g, Triangle(), WithStrategy(StrategyTwoRound), WithAdaptive(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var streamed int64
	if _, err := Stream(context.Background(), plan, func([]Node) bool { streamed++; return true }); err != nil {
		t.Fatal(err)
	}
	if streamed != want {
		t.Errorf("streamed %d triangles through the replanned cascade, oracle %d", streamed, want)
	}

	auto, err := Plan(g, Triangle(), WithAdaptive(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var iterated int64
	for _, err := range Instances(context.Background(), auto) {
		if err != nil {
			t.Fatal(err)
		}
		iterated++
	}
	if iterated != want {
		t.Errorf("iterated %d triangles under the adaptive auto plan (%v b=%d), oracle %d",
			iterated, auto.Strategy, auto.Chosen.Buckets, want)
	}
}
