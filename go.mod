module subgraphmr

go 1.24
