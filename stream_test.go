package subgraphmr

import (
	"context"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"
)

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (background runtime goroutines may legitimately linger, so the
// check retries before declaring a leak).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// k5Plan builds the acceptance workload: K5s in a large clique — every
// 5-subset of K16 is an instance, so there is far more work than any
// 10-instance prefix needs.
func k5Plan(t *testing.T, opts ...Option) *QueryPlan {
	t.Helper()
	g := CompleteGraph(16)
	plan, err := Plan(g, CliqueSample(5), append([]Option{WithTargetReducers(256), WithSeed(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestInstancesEarlyBreak is the acceptance scenario: enumerating K5s in a
// large clique and breaking after 10 instances must do fewer work units
// than the full run, return promptly, and leak no goroutines.
func TestInstancesEarlyBreak(t *testing.T) {
	ctx := context.Background()
	plan := k5Plan(t)

	full, err := Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if full.Count == 0 {
		t.Fatal("no K5s in K16?")
	}

	baseline := runtime.NumGoroutine()
	got := 0
	for phi, err := range Instances(ctx, plan) {
		if err != nil {
			t.Fatal(err)
		}
		if len(phi) != 5 {
			t.Fatalf("instance has %d nodes, want 5", len(phi))
		}
		got++
		if got == 10 {
			break
		}
	}
	if got != 10 {
		t.Fatalf("broke after %d instances, want 10", got)
	}
	waitForGoroutines(t, baseline)

	// The callback form exposes the partial metrics: breaking after 10
	// must have skipped most of the reducer work the full run performed.
	n := 0
	partial, err := Stream(ctx, plan, func([]Node) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Count >= full.Count {
		t.Errorf("early break delivered %d instances, full run %d", partial.Count, full.Count)
	}
	partialWork := partial.TotalReducerWork()
	fullWork := full.TotalReducerWork()
	if partialWork >= fullWork {
		t.Errorf("early break did %d work units, full run %d — no work was saved", partialWork, fullWork)
	}
	waitForGoroutines(t, baseline)
}

// TestInstancesCancelledContext checks a pre-cancelled and an expired
// context both surface context errors promptly and leak nothing.
func TestInstancesCancelledContext(t *testing.T) {
	plan := k5Plan(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawErr := false
	for _, err := range Instances(ctx, plan) {
		if err != nil {
			sawErr = true
			if !errors.Is(err, context.Canceled) {
				t.Errorf("got %v, want context.Canceled", err)
			}
		}
	}
	if !sawErr {
		t.Error("cancelled context produced no error")
	}
	waitForGoroutines(t, baseline)

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	sawErr = false
	for _, err := range Instances(dctx, plan) {
		if err != nil {
			sawErr = true
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("got %v, want context.DeadlineExceeded", err)
			}
		}
	}
	if !sawErr {
		t.Error("expired deadline produced no error")
	}
	waitForGoroutines(t, baseline)
}

// TestInstancesMidRunCancel cancels while instances are flowing and checks
// the iterator terminates with the context error well before finishing.
func TestInstancesMidRunCancel(t *testing.T) {
	plan := k5Plan(t)
	full, err := Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var count int64
	var ctxErr error
	for phi, err := range Instances(ctx, plan) {
		if err != nil {
			ctxErr = err
			continue
		}
		_ = phi
		count++
		if count == 5 {
			cancel()
		}
	}
	if ctxErr == nil {
		t.Error("mid-run cancel surfaced no error")
	} else if !errors.Is(ctxErr, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", ctxErr)
	}
	if count >= full.Count {
		t.Errorf("cancel after 5 still delivered all %d instances", count)
	}
	waitForGoroutines(t, baseline)
}

// TestStreamSpillCleanup checks that streamed runs under a memory budget
// leave no spill files behind — on completion, on early break, and on
// cancellation.
func TestStreamSpillCleanup(t *testing.T) {
	ctx := context.Background()
	assertEmpty := func(t *testing.T, dir, when string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) == 0 {
				return
			}
			if time.Now().After(deadline) {
				names := make([]string, len(entries))
				for i, e := range entries {
					names[i] = e.Name()
				}
				t.Fatalf("%s: %d spill files left in %s: %v", when, len(entries), dir, names)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Completed streamed run: must actually spill, then clean up.
	dir := t.TempDir()
	plan := k5Plan(t, WithMemoryBudget(1<<14), WithSpillDir(dir))
	res, err := Stream(ctx, plan, func([]Node) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	var spilled int64
	for _, job := range res.Jobs {
		spilled += job.Metrics.SpilledPairs
	}
	if spilled == 0 {
		t.Fatal("16 KiB budget did not spill — cleanup checks below would be vacuous")
	}
	assertEmpty(t, dir, "completed run")

	// Early iterator break mid-spill.
	dir = t.TempDir()
	plan = k5Plan(t, WithMemoryBudget(1<<14), WithSpillDir(dir))
	baseline := runtime.NumGoroutine()
	n := 0
	for _, err := range Instances(ctx, plan) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 3 {
			break
		}
	}
	waitForGoroutines(t, baseline)
	assertEmpty(t, dir, "early break")

	// Cancellation mid-run.
	dir = t.TempDir()
	plan = k5Plan(t, WithMemoryBudget(1<<14), WithSpillDir(dir))
	cctx, cancel := context.WithCancel(ctx)
	n = 0
	for _, err := range Instances(cctx, plan) {
		if err != nil {
			break
		}
		n++
		if n == 3 {
			cancel()
		}
	}
	cancel()
	waitForGoroutines(t, baseline)
	assertEmpty(t, dir, "cancelled run")
}

// TestStreamIgnoresCountOnly pins the documented contract: a plan built
// with WithCountOnly still delivers every instance when executed through
// Stream/Instances (counting without delivery is Run's job). Regression
// test — the CQ strategies used to route matches to the reducer-side
// counter and yield nothing.
func TestStreamIgnoresCountOnly(t *testing.T) {
	ctx := context.Background()
	g := Gnm(100, 400, 13)
	want := CountTriangles(g)
	if want == 0 {
		t.Fatal("test graph has no triangles")
	}
	for _, st := range []PlanStrategy{StrategyBucketOriented, StrategyDecomposed, StrategyTrianglePartition, StrategyTwoRound} {
		plan, err := Plan(g, Triangle(), WithStrategy(st), WithTargetReducers(64), WithCountOnly())
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		var streamed int64
		res, err := Stream(ctx, plan, func([]Node) bool { streamed++; return true })
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if streamed != want {
			t.Errorf("%v: Stream under WithCountOnly delivered %d instances, want %d", st, streamed, want)
		}
		if res.Count != want {
			t.Errorf("%v: Stream result count %d, want %d", st, res.Count, want)
		}
	}
}

// TestStreamMatchesMaterialized checks the streamed instance set is
// exactly the materialized one for every strategy family.
func TestStreamMatchesMaterialized(t *testing.T) {
	ctx := context.Background()
	g := Gnm(150, 600, 11)
	for _, tc := range []struct {
		s  *Sample
		st PlanStrategy
	}{
		{Triangle(), StrategyBucketOriented},
		{Triangle(), StrategyTrianglePartition},
		{Triangle(), StrategyTwoRound},
		{Square(), StrategyVariableOriented},
		{Square(), StrategyCQOriented},
		{Square(), StrategyDecomposed},
	} {
		plan, err := Plan(g, tc.s, WithStrategy(tc.st), WithTargetReducers(64), WithSeed(4))
		if err != nil {
			t.Fatalf("%v: %v", tc.st, err)
		}
		res, err := Run(ctx, plan)
		if err != nil {
			t.Fatalf("%v: %v", tc.st, err)
		}
		want := map[string]bool{}
		for _, phi := range res.Instances {
			want[tc.s.Key(phi)] = true
		}
		streamed := map[string]bool{}
		for phi, err := range Instances(ctx, plan) {
			if err != nil {
				t.Fatalf("%v: %v", tc.st, err)
			}
			key := tc.s.Key(phi)
			if streamed[key] {
				t.Errorf("%v: instance %s streamed twice", tc.st, key)
			}
			streamed[key] = true
			if !want[key] {
				t.Errorf("%v: streamed %s not in materialized result", tc.st, key)
			}
		}
		if len(streamed) != len(want) {
			t.Errorf("%v: streamed %d distinct instances, materialized %d", tc.st, len(streamed), len(want))
		}
	}
}
