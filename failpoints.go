package subgraphmr

import "subgraphmr/internal/failpoint"

// EnableFailpoints arms fault-injection sites from a spec string of the
// form "site=mode[*count]" with ';' (or ',') separating multiple entries,
// e.g. "mr.spill.write=enospc;distrib.dial=error*2". Modes are error,
// enospc, panic, delay:DURATION and corrupt; an optional *count bounds how
// many times the site fires. Sites are process-global and meant for tests
// and chaos drills — when nothing is armed the engine pays a single atomic
// load per site. The same specs can be supplied through the SGMR_FAILPOINTS
// environment variable, which spawned worker processes inherit.
//
// See internal/failpoint for the site catalog and
// docs/ARCHITECTURE.md ("Failure model & failpoints") for the semantics of
// each site.
func EnableFailpoints(specs string) error { return failpoint.EnableSpecs(specs) }

// ResetFailpoints disarms every failpoint, returning the process to the
// zero-overhead disabled state.
func ResetFailpoints() { failpoint.Reset() }
