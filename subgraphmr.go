// Package subgraphmr enumerates all instances of a small "sample" graph
// inside a large "data" graph using a single round of map-reduce, following
// Afrati, Fotakis and Ullman, "Enumerating Subgraph Instances Using
// Map-Reduce" (ICDE 2013).
//
// The public API is organized around three verbs:
//
//   - Plan compiles a query — a (data graph, sample graph) pair plus
//     functional options (WithStrategy, WithTargetReducers,
//     WithMemoryBudget, WithSeed, …) — into an explainable QueryPlan. The
//     default StrategyAuto costs every viable strategy with the paper's
//     Section 4 share models and Section 2 closed forms and picks the
//     cheapest; QueryPlan.Explain prints the full candidate table.
//   - Run executes a plan under a context.Context and materializes a
//     unified Result (instances, exact count, per-job metrics) for every
//     strategy, the triangle algorithms and the two-round cascade
//     included. Cancelling the context aborts the engine cleanly.
//   - Instances executes a plan as a streaming iterator
//     (iter.Seq2[[]Node, error]): instances arrive one at a time at the
//     consumer's pace, breaking the loop or cancelling the context tears
//     the engine down promptly, and output never has to fit in memory
//     (bound the shuffle itself with WithMemoryBudget). Stream is the
//     callback-shaped equivalent that also returns metrics.
//
// Supporting surface:
//
//   - Data graphs: build with NewGraphBuilder or the generators (Gnm,
//     PowerLaw, CycleGraph, …), or load with ReadGraph.
//   - Sample graphs: the catalog (Triangle, Square, Lollipop, CycleSample,
//     …) or NewSample for custom patterns.
//   - The serial algorithms of Sections 6–7 (SerialTriangles, OddCycles,
//     EnumerateByDecomposition, EnumerateBoundedDegree) are exposed for
//     single-machine use and as baselines.
//   - The analysis toolkit (CQsFor, MergedCQsFor, CycleCQs, OptimizeShares)
//     exposes the CQ generation of Sections 3 and 5 and the share
//     optimization of Section 4 for planning without running a job.
//   - The pipelined engine itself is programmable: build custom rounds
//     with MapReduceJob (optional combiner, partitioner and spill codec)
//     and compose multi-round jobs with NewChain/RunRound. Setting
//     EngineConfig.MemoryBudget bounds reduce-worker memory — beyond it
//     the engine spills sorted runs to disk and merge-streams them into
//     the reducers; see docs/ARCHITECTURE.md and docs/API.md.
//
// The pre-Plan entry points (Enumerate, TrianglePartition, …) survive as
// deprecated wrappers; docs/API.md has the migration table.
//
// Every enumeration method produces each instance exactly once; instances
// are reported as assignments of data nodes to sample variables.
package subgraphmr

import (
	"io"

	"subgraphmr/internal/core"
	"subgraphmr/internal/cq"
	"subgraphmr/internal/cycles"
	"subgraphmr/internal/graph"
	"subgraphmr/internal/mapreduce"
	"subgraphmr/internal/sample"
	"subgraphmr/internal/serial"
	"subgraphmr/internal/shares"
	"subgraphmr/internal/triangle"
)

// Core graph types.
type (
	// Graph is an immutable undirected data graph.
	Graph = graph.Graph
	// Node identifies a data-graph node.
	Node = graph.Node
	// Edge is an undirected data-graph edge in canonical (U < V) form.
	Edge = graph.Edge
	// GraphBuilder accumulates edges for a Graph.
	GraphBuilder = graph.Builder
	// Sample is a pattern graph whose instances are enumerated.
	Sample = sample.Sample
	// CQ is a conjunctive query compiled from a sample graph.
	CQ = cq.CQ
	// CycleCQ is a Section 5 cycle conjunctive query with its orientation
	// metadata.
	CycleCQ = cycles.CycleCQ
	// Metrics carries the measured costs of a map-reduce job.
	Metrics = mapreduce.Metrics
	// EngineConfig controls the pipelined map-reduce engine (map workers,
	// shuffle partitions, batch sizes).
	EngineConfig = mapreduce.Config
	// ReduceContext is handed to reducers for reporting abstract work.
	ReduceContext = mapreduce.Context
	// Chain executes a multi-round map-reduce job and accumulates per-round
	// metrics; run rounds with RunRound.
	Chain = mapreduce.Chain
	// RoundStats records one executed round of a Chain.
	RoundStats = mapreduce.RoundStats
	// Options configures Enumerate.
	Options = core.Options
	// Strategy selects the Section 4 processing strategy.
	Strategy = core.Strategy
	// Result is the outcome of Enumerate.
	Result = core.Result
	// JobStats describes one map-reduce job of an enumeration.
	JobStats = core.JobStats
	// ShareModel is a Section 4 communication-cost model.
	ShareModel = shares.Model
	// ShareSubgoal is one subgoal of a ShareModel.
	ShareSubgoal = shares.Subgoal
	// ShareSolution is an optimized share assignment.
	ShareSolution = shares.Solution
	// TriangleResult is the outcome of a Section 2 triangle job.
	TriangleResult = triangle.Result
	// TwoPath is a properly ordered 2-path (Lemma 7.1).
	TwoPath = serial.TwoPath
	// DecompositionPart is one part of a Theorem 7.2 decomposition.
	DecompositionPart = sample.Part
)

// Processing strategies (Section 4).
const (
	// BucketOriented is the Section 4.5 strategy (the default).
	BucketOriented = core.BucketOriented
	// CQOriented runs one job per conjunctive query (Section 4.1).
	CQOriented = core.CQOriented
	// VariableOriented runs one combined job for all CQs (Section 4.3).
	VariableOriented = core.VariableOriented
)

// MapReduceJob is one round of the pipelined engine: Map and Reduce are
// required; Combine (pre-shuffle aggregation), Partition (key routing) and
// Codec (spill serialization under EngineConfig.MemoryBudget) are
// optional. Run it directly or as a Chain round via RunRound.
type MapReduceJob[I any, K comparable, V any, O any] = mapreduce.Job[I, K, V, O]

// SpillCodec serializes keys and values for the external shuffle's spill
// runs; see mapreduce.Codec for the contract (deterministic, injective key
// encodings). DefaultSpillCodec covers any gob-encodable pair.
type SpillCodec[K comparable, V any] = mapreduce.Codec[K, V]

// DefaultSpillCodec builds the codec the engine uses when a job sets none:
// raw bytes for strings, big-endian words for integer kinds,
// encoding/binary for fixed-size types, gob for everything else.
func DefaultSpillCodec[K comparable, V any]() SpillCodec[K, V] {
	return mapreduce.DefaultCodec[K, V]()
}

// NewChain returns a Chain whose rounds run under cfg.
func NewChain(cfg EngineConfig) *Chain { return mapreduce.NewChain(cfg) }

// RunRound executes j as the chain's next round and returns its outputs.
func RunRound[I any, K comparable, V any, O any](c *Chain, j MapReduceJob[I, K, V, O], inputs []I) []O {
	return mapreduce.RunRound(c, j, inputs)
}

// Enumerate finds every instance of s in g exactly once using single-round
// map-reduce jobs (see Options for strategy, reducer budget and seeds).
//
// Deprecated: use Plan with WithStrategy and Run (or Instances for
// streaming delivery); the unified API adds context cancellation,
// automatic strategy selection and explainable cost estimates.
func Enumerate(g *Graph, s *Sample, opt Options) (*Result, error) {
	return core.Enumerate(g, s, opt)
}

// EnumerateDecomposed runs the Theorem 6.1 conversion of the serial
// decomposition algorithm as one map-reduce round: every reducer runs the
// Theorem 7.2 algorithm on its bucket-local fragment and keeps only the
// instances whose bucket multiset it owns. Pass nil parts to use the
// optimal decomposition.
//
// Deprecated: use Plan with WithStrategy(StrategyDecomposed) and Run.
// (Custom decomposition parts remain available through this wrapper.)
func EnumerateDecomposed(g *Graph, s *Sample, parts []DecompositionPart, opt Options) (*Result, error) {
	return core.EnumerateDecomposed(g, s, parts, opt)
}

// NewGraphBuilder returns a builder for a data graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdges builds a data graph with n nodes from an edge list.
func GraphFromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Gnm returns an Erdős–Rényi random graph with n nodes and m edges.
func Gnm(n, m int, seed int64) *Graph { return graph.Gnm(n, m, seed) }

// Gnp returns an Erdős–Rényi random graph with edge probability p.
func Gnp(n int, p float64, seed int64) *Graph { return graph.Gnp(n, p, seed) }

// PowerLaw returns a Chung–Lu power-law random graph (social-network-like
// degree skew).
func PowerLaw(n int, avgDeg, exponent float64, seed int64) *Graph {
	return graph.PowerLaw(n, avgDeg, exponent, seed)
}

// CycleGraph returns the data graph C_n.
func CycleGraph(n int) *Graph { return graph.CycleGraph(n) }

// CompleteGraph returns the data graph K_n.
func CompleteGraph(n int) *Graph { return graph.CompleteGraph(n) }

// GridGraph returns the rows×cols grid data graph.
func GridGraph(rows, cols int) *Graph { return graph.GridGraph(rows, cols) }

// RegularTree returns the Δ-regular tree of the given depth (Section 7.3).
func RegularTree(delta, depth int) *Graph { return graph.RegularTree(delta, depth) }

// ReadGraph parses an edge-list file ("u v" per line, optional
// "# nodes N" header).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes g in the edge-list format ReadGraph parses.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// NewSample builds a custom sample graph on p nodes with the given edges
// (and optional display names).
func NewSample(p int, edges [][2]int, names ...string) (*Sample, error) {
	return sample.New(p, edges, names...)
}

// Sample catalog (Figs. 3, 4 and 8 of the paper).
func Triangle() *Sample          { return sample.Triangle() }
func Square() *Sample            { return sample.Square() }
func Lollipop() *Sample          { return sample.Lollipop() }
func CycleSample(p int) *Sample  { return sample.Cycle(p) }
func CliqueSample(p int) *Sample { return sample.Complete(p) }
func PathSample(p int) *Sample   { return sample.Path(p) }
func StarSample(p int) *Sample   { return sample.Star(p) }

// NamedSample returns a catalog sample by name ("triangle", "square",
// "lollipop", "c5", "k4", "path4", "star5", "q3", …) or nil if unknown.
func NamedSample(name string) *Sample { return sample.Named(name) }

// CQsFor compiles the sample graph into one conjunctive query per coset of
// Sym(p)/Aut(S) (Theorem 3.1).
func CQsFor(s *Sample) []*CQ { return cq.GenerateForSample(s) }

// MergedCQsFor compiles the sample and merges CQs with identical edge
// orientations (Section 3.3) — the set the map-reduce strategies evaluate.
func MergedCQsFor(s *Sample) []*CQ { return cq.MergeByOrientation(cq.GenerateForSample(s)) }

// CycleCQs generates the minimum CQ set for the cycle C_p using the
// Section 5 run-sequence algorithm.
func CycleCQs(p int) []CycleCQ { return cycles.Generate(p) }

// OptimizeShares solves the Section 4 share-optimization problem for k
// reducers: minimize communication subject to the product of shares = k.
func OptimizeShares(m ShareModel, k float64) (ShareSolution, error) { return m.Solve(k) }

// VariableOrientedModel builds the Section 4.3 cost model for a CQ set.
func VariableOrientedModel(p int, cqs []*CQ) ShareModel {
	return shares.VariableOrientedModel(p, cqs)
}

// SerialTriangles enumerates every triangle of g exactly once in O(m^{3/2})
// (the Section 2 serial baseline), returning the work performed.
func SerialTriangles(g *Graph, emit func(a, b, c Node)) int64 {
	return serial.Triangles(g, emit)
}

// CountTriangles returns the number of triangles in g.
func CountTriangles(g *Graph) int64 { return serial.CountTriangles(g) }

// OddCycles enumerates every cycle C_{2k+1} of g exactly once using the
// paper's Algorithm 1 (Theorem 7.1), a (0, (2k+1)/2)-algorithm.
func OddCycles(g *Graph, k int, emit func(cycle []Node)) int64 {
	return serial.OddCycles(g, k, emit)
}

// ProperlyOrdered2Paths enumerates the properly ordered 2-paths of g
// (Lemma 7.1); there are O(m^{3/2}) of them.
func ProperlyOrdered2Paths(g *Graph, emit func(TwoPath)) int64 {
	return serial.ProperlyOrdered2Paths(g, emit)
}

// BruteForce enumerates every instance of s in g exactly once by
// exhaustive search — the reference oracle.
func BruteForce(g *Graph, s *Sample) [][]Node { return serial.BruteForce(g, s) }

// EnumerateByDecomposition runs the Theorem 7.2 serial algorithm: decompose
// s into edges, odd-Hamiltonian parts and isolated nodes, enumerate parts,
// and join. Pass nil parts to use the optimal decomposition.
func EnumerateByDecomposition(g *Graph, s *Sample, parts []DecompositionPart) ([][]Node, int64, error) {
	return serial.EnumerateByDecomposition(g, s, parts)
}

// EnumerateBoundedDegree runs the Theorem 7.3 serial algorithm, which on
// data graphs of maximum degree Δ takes O(m·Δ^{p-2}).
func EnumerateBoundedDegree(g *Graph, s *Sample) ([][]Node, int64, error) {
	return serial.EnumerateBoundedDegree(g, s)
}

// TrianglePartition runs the Suri–Vassilvitskii Partition algorithm
// (Section 2.1) with b node groups.
//
// Deprecated: use Plan with WithStrategy(StrategyTrianglePartition),
// WithBuckets(b) and WithSeed(seed), then Run — the unified Result adds
// context cancellation and engine configuration.
func TrianglePartition(g *Graph, b int, seed uint64) (TriangleResult, error) {
	return triangle.Partition(g, b, seed, mapreduce.Config{})
}

// TriangleMultiway runs the plain multiway-join algorithm (Section 2.2)
// with shares (b, b, b).
//
// Deprecated: use Plan with WithStrategy(StrategyTriangleMultiway),
// WithBuckets(b) and WithSeed(seed), then Run.
func TriangleMultiway(g *Graph, b int, seed uint64) (TriangleResult, error) {
	return triangle.Multiway(g, b, seed, mapreduce.Config{})
}

// TriangleBucketOrdered runs the paper's improved algorithm (Section 2.3)
// with b buckets.
//
// Deprecated: use Plan with WithStrategy(StrategyTriangleBucketOrdered),
// WithBuckets(b) and WithSeed(seed), then Run.
func TriangleBucketOrdered(g *Graph, b int, seed uint64) (TriangleResult, error) {
	return triangle.BucketOrdered(g, b, seed, mapreduce.Config{})
}

// BarabasiAlbert returns a preferential-attachment random graph (heavy
// hubs): m0-clique seed, each new node attaches to k existing nodes
// proportionally to degree.
func BarabasiAlbert(n, m0, k int, seed int64) *Graph {
	return graph.BarabasiAlbert(n, m0, k, seed)
}

// Theorem43Shares applies Theorem 4.3's closed form when the sample's
// orientation structure matches one of its cases; see
// shares.Theorem43Shares.
func Theorem43Shares(s *Sample, k float64) ([]float64, bool) {
	uses := cq.EdgeUses(cq.MergeByOrientation(cq.GenerateForSample(s)))
	degrees := make([]int, s.P())
	for i := range degrees {
		degrees[i] = s.Degree(i)
	}
	sh, which := shares.Theorem43Shares(s.P(), degrees, uses, k)
	return sh, which != shares.Theorem43None
}

// Convertible is the Theorem 6.1 condition: a serial O(n^α·m^β) algorithm
// for a p-node sample converts to an equal-work map-reduce algorithm when
// α + 2β ≥ p.
func Convertible(alpha, beta float64, p int) bool {
	return shares.Convertible(alpha, beta, p)
}
