package subgraphmr

import (
	"fmt"
	"sort"
	"testing"
)

// TestIntegrationAllPathsAgree cross-validates every enumeration path in
// the library — three map-reduce strategies, the Section 5 cycle CQs,
// the two serial algorithms of Section 7, and the brute-force oracle — on
// the same graphs and samples. Every path must produce the identical
// instance set, each instance exactly once.
func TestIntegrationAllPathsAgree(t *testing.T) {
	type path struct {
		name string
		run  func(g *Graph, s *Sample) ([][]Node, error)
	}
	mr := func(strat Strategy) func(g *Graph, s *Sample) ([][]Node, error) {
		return func(g *Graph, s *Sample) ([][]Node, error) {
			res, err := Enumerate(g, s, Options{Strategy: strat, TargetReducers: 150, Seed: 9})
			if err != nil {
				return nil, err
			}
			return res.Instances, nil
		}
	}
	paths := []path{
		{"bucket-oriented", mr(BucketOriented)},
		{"variable-oriented", mr(VariableOriented)},
		{"cq-oriented", mr(CQOriented)},
		{"serial-decomposition", func(g *Graph, s *Sample) ([][]Node, error) {
			out, _, err := EnumerateByDecomposition(g, s, nil)
			return out, err
		}},
		{"serial-bounded-degree", func(g *Graph, s *Sample) ([][]Node, error) {
			out, _, err := EnumerateBoundedDegree(g, s)
			return out, err
		}},
	}
	samples := []*Sample{Triangle(), Square(), Lollipop(), CycleSample(5), CliqueSample(4)}
	graphs := []*Graph{
		Gnm(18, 50, 21),
		PowerLaw(40, 5, 2.3, 4),
		GridGraph(4, 5),
	}
	for _, g := range graphs {
		for _, s := range samples {
			want := keySetOf(s, BruteForce(g, s))
			for _, p := range paths {
				got, err := p.run(g, s)
				if err != nil {
					t.Fatalf("%s on %v: %v", p.name, s, err)
				}
				gotSet := map[string]bool{}
				for _, phi := range got {
					k := s.Key(phi)
					if gotSet[k] {
						t.Fatalf("%s on %v: duplicate %v", p.name, s, phi)
					}
					gotSet[k] = true
				}
				if len(gotSet) != len(want) {
					t.Fatalf("%s on %v (n=%d m=%d): %d instances, oracle %d",
						p.name, s, g.NumNodes(), g.NumEdges(), len(gotSet), len(want))
				}
				for k := range want {
					if !gotSet[k] {
						t.Fatalf("%s on %v: missing %s", p.name, s, k)
					}
				}
			}
		}
	}
}

// TestIntegrationCycleCQsAgree: for cycles, the Section 5 CQ route agrees
// with the Section 3 route across strategies.
func TestIntegrationCycleCQsAgree(t *testing.T) {
	g := Gnm(20, 55, 8)
	for _, p := range []int{4, 5, 6, 7} {
		s := CycleSample(p)
		var counts []int
		for _, useCycle := range []bool{false, true} {
			res, err := Enumerate(g, s, Options{Buckets: 3, UseCycleCQs: useCycle, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			counts = append(counts, len(res.Instances))
		}
		if counts[0] != counts[1] {
			t.Errorf("p=%d: general %d vs cycle CQs %d", p, counts[0], counts[1])
		}
		if int64(counts[0]) != int64(len(BruteForce(g, s))) {
			t.Errorf("p=%d: %d cycles, oracle %d", p, counts[0], len(BruteForce(g, s)))
		}
	}
}

// TestIntegrationTriangleSixWays: every triangle path in the repository
// (three Section 2 algorithms, the generic core engine, the cascade, and
// the serial baseline) agrees.
func TestIntegrationTriangleSixWays(t *testing.T) {
	g := PowerLaw(300, 8, 2.2, 6)
	want := CountTriangles(g)

	p1, err := TrianglePartition(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := TriangleMultiway(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := TriangleBucketOrdered(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Enumerate(g, Triangle(), Options{Buckets: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p5 := TwoRoundTriangles(g)

	got := []int64{p1.Count(), p2.Count(), p3.Count(), int64(len(p4.Instances)), p5.Count()}
	for i, c := range got {
		if c != want {
			t.Errorf("path %d: %d triangles, want %d", i, c, want)
		}
	}
}

// TestIntegrationDeterministicAcrossRuns: the same options yield the same
// metrics and instances on repeated runs (hash seeds are deterministic).
func TestIntegrationDeterministicAcrossRuns(t *testing.T) {
	g := Gnm(25, 70, 12)
	run := func() (string, int64) {
		res, err := Enumerate(g, Lollipop(), Options{Strategy: VariableOriented, TargetReducers: 64, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(res.Instances))
		for _, phi := range res.Instances {
			keys = append(keys, fmt.Sprint(phi))
		}
		sort.Strings(keys)
		return fmt.Sprint(keys), res.TotalComm()
	}
	k1, c1 := run()
	k2, c2 := run()
	if k1 != k2 || c1 != c2 {
		t.Error("repeated runs with the same seed differ")
	}
}

func keySetOf(s *Sample, assignments [][]Node) map[string]bool {
	set := make(map[string]bool, len(assignments))
	for _, phi := range assignments {
		set[s.Key(phi)] = true
	}
	return set
}
