package subgraphmr

import (
	"context"

	"subgraphmr/internal/approx"
	"subgraphmr/internal/cycles"
	"subgraphmr/internal/directed"
	"subgraphmr/internal/mapreduce"
	"subgraphmr/internal/multijoin"
	"subgraphmr/internal/tworound"
)

// Directed, edge-labeled graphs — the extension sketched in the paper's
// conclusions ("labeled, directed sample graphs ... the same methods
// work").
type (
	// DiGraph is a directed, edge-labeled data graph.
	DiGraph = directed.DiGraph
	// DiGraphBuilder accumulates arcs for a DiGraph.
	DiGraphBuilder = directed.DiBuilder
	// Arc is a directed labeled data edge.
	Arc = directed.Arc
	// ArcLabel identifies an arc label (one relation per label).
	ArcLabel = directed.Label
	// DiPattern is a directed, labeled sample graph.
	DiPattern = directed.DiPattern
	// PatternArc is a directed labeled edge of a DiPattern.
	PatternArc = directed.PatternArc
	// DirectedOptions configures EnumerateDirected.
	DirectedOptions = directed.Options
	// DirectedResult is the outcome of EnumerateDirected.
	DirectedResult = directed.Result
	// TwoRoundResult is the outcome of the cascade triangle baseline.
	TwoRoundResult = tworound.Result
)

// Arc labels for the threat-detection patterns of Section 1.1.
const (
	LabelKnows    = directed.LabelKnows
	LabelBuysFrom = directed.LabelBuysFrom
	LabelBookedOn = directed.LabelBookedOn
)

// NewDiGraphBuilder returns a builder for a directed labeled graph with n
// nodes.
func NewDiGraphBuilder(n int) *DiGraphBuilder { return directed.NewDiBuilder(n) }

// RandomDiGraph returns a random directed graph with n nodes, m arcs and
// the given number of labels.
func RandomDiGraph(n, m, labels int, seed int64) *DiGraph {
	return directed.RandomDiGraph(n, m, labels, seed)
}

// NewDiPattern builds a directed labeled sample pattern.
func NewDiPattern(p int, arcs []PatternArc, names ...string) (*DiPattern, error) {
	return directed.NewPattern(p, arcs, names...)
}

// DirectedCyclePattern returns the directed p-cycle pattern with one label.
func DirectedCyclePattern(p int, label ArcLabel) *DiPattern {
	return directed.DirectedCycle(p, label)
}

// DirectedPathPattern returns the directed p-node path pattern.
func DirectedPathPattern(p int, label ArcLabel) *DiPattern {
	return directed.DirectedPath(p, label)
}

// FanInPattern returns p-1 sources pointing at one sink.
func FanInPattern(p int, label ArcLabel) *DiPattern { return directed.FanIn(p, label) }

// ThreatRingPattern returns the Section 1.1-style query: k people booked
// on the same flight who form a buys-from ring.
func ThreatRingPattern(k int) *DiPattern { return directed.ThreatRing(k) }

// EnumerateDirected finds every instance of a directed labeled pattern in
// a single map-reduce round, each exactly once.
func EnumerateDirected(g *DiGraph, pt *DiPattern, opt DirectedOptions) (*DirectedResult, error) {
	return directed.Enumerate(g, pt, opt)
}

// EnumerateDirectedContext is EnumerateDirected under a context and an
// optional streaming sink: a nil sink materializes Result.Instances; a
// non-nil sink receives each instance instead (serialized, with
// backpressure; returning false stops the job early). Cancelling ctx
// aborts the job, removes spill runs and returns ctx.Err(). The directed
// Options honor the same execution knobs as the undirected planner
// (TargetReducers, Parallelism, Partitions, MemoryBudget, SpillDir, Seed).
func EnumerateDirectedContext(ctx context.Context, g *DiGraph, pt *DiPattern, opt DirectedOptions, sink func([]Node) bool) (*DirectedResult, error) {
	return directed.EnumerateContext(ctx, g, pt, opt, sink)
}

// DirectedBruteForce is the exhaustive oracle for directed patterns.
func DirectedBruteForce(g *DiGraph, pt *DiPattern) [][]Node {
	return directed.BruteForce(g, pt)
}

// TwoRoundTriangles runs the conventional cascade of two-way joins (two
// map-reduce rounds, materialized wedge relation) — the baseline the
// paper's one-round algorithms beat.
//
// Deprecated: use Plan with WithStrategy(StrategyTwoRound) and Run; the
// unified Result reports one JobStats per round.
func TwoRoundTriangles(g *Graph) TwoRoundResult {
	return tworound.Triangles(g, mapreduce.Config{})
}

// TwoRoundTrianglesConfig is TwoRoundTriangles under an explicit engine
// configuration — e.g. a MemoryBudget that spills the materialized wedge
// relation instead of holding it in the reduce workers.
//
// Deprecated: use Plan with WithStrategy(StrategyTwoRound) plus the engine
// options (WithMemoryBudget, WithSpillDir, …) and Run.
func TwoRoundTrianglesConfig(g *Graph, cfg EngineConfig) TwoRoundResult {
	return tworound.Triangles(g, cfg)
}

// WedgeCount returns the size of the intermediate relation the cascade
// must ship.
func WedgeCount(g *Graph) int64 { return tworound.WedgeCount(g) }

// DoulionTriangles estimates the triangle count by coin-flip edge
// sparsification (keep probability q), averaged over trials — the
// probabilistic baseline of the paper's related work [20].
func DoulionTriangles(g *Graph, q float64, trials int, seed int64) float64 {
	return approx.DoulionTriangles(g, q, trials, seed)
}

// ColorCodingPaths estimates the number of simple p-node paths by the
// color-coding method of the paper's related work [5].
func ColorCodingPaths(g *Graph, p, trials int, seed int64) float64 {
	return approx.ColorCodingPaths(g, p, trials, seed)
}

// Multiway-join cascade (Section 7.4) and orientation-class exports.
type (
	// JoinRelation is a binary relation of a multiway join.
	JoinRelation = multijoin.Relation
	// JoinTuple is one row of a JoinRelation.
	JoinTuple = multijoin.Tuple
	// OrientationClassCount is one cycle orientation class with its size.
	OrientationClassCount = cycles.ClassCount
)

// NewJoinRelation builds a relation from tuples, removing duplicates.
func NewJoinRelation(tuples []JoinTuple) *JoinRelation { return multijoin.NewRelation(tuples) }

// CycleJoin evaluates the p-cycle join serially by backtracking, returning
// the result rows and the work performed.
func CycleJoin(rels []*JoinRelation) ([][]int64, int64) { return multijoin.CycleJoin(rels) }

// CycleJoinChain evaluates the p-cycle join as an explicit cascade of
// two-way joins — one map-reduce round per relation after the first — and
// returns the rows plus the chain with per-round metrics, so the
// intermediate-relation blowup the paper argues against is measurable.
func CycleJoinChain(rels []*JoinRelation, cfg EngineConfig) ([][]int64, *Chain) {
	return multijoin.CycleJoinChain(rels, cfg)
}

// CycleClassCountsMR computes the Section 5 orientation classes of C_p and
// their sizes on the map-reduce engine, using a counting combiner to cut
// the shuffled pairs down to classes × shards.
func CycleClassCountsMR(p int, cfg EngineConfig) ([]OrientationClassCount, Metrics) {
	return cycles.ClassCountsMR(p, cfg)
}
