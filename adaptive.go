package subgraphmr

import (
	"math"
	"sort"

	"subgraphmr/internal/core"
	"subgraphmr/internal/mapreduce"
	"subgraphmr/internal/shares"
	"subgraphmr/internal/triangle"
	"subgraphmr/internal/tworound"
)

// This file implements WithAdaptive's pre-run probing: before committing
// to a strategy, the planner measures each viable candidate's actual
// reducer loads with a map-only pass over the exact mapper (and seed) the
// candidate would execute — bounded work: pairs are counted per key, never
// grouped or reduced. The closed-form estimates price uniform graphs; the
// probes see the hub that concentrates a power-law graph's edges on a few
// reducers, and the re-ranking makes such candidates pay for it.

// LoadProbe is one row of the adaptive planner's probe table: a candidate
// configuration and its observed loads. Bucket-style candidates are probed
// at raised bucket counts too ("split the hot reducers"), so a strategy can
// appear several times at different b.
type LoadProbe struct {
	// Strategy is the probed candidate's strategy.
	Strategy PlanStrategy
	// Buckets is the probed bucket count (bucket-style strategies).
	Buckets int `json:",omitempty"`
	// Shares is the probed share vector (share-based strategies).
	Shares []int `json:",omitempty"`
	// Comm is the observed communication: the exact key-value pairs the
	// configuration ships (for the cascade, the plan's exact 3m+W total).
	Comm int64
	// Keys is the number of reducers that would receive data (round 1
	// only, for the cascade).
	Keys int64
	// MaxLoad is the largest single reducer input observed.
	MaxLoad int64
	// MeanLoad is Comm / Keys (round-1 pairs over round-1 keys for the
	// cascade).
	MeanLoad float64
	// Skew is MaxLoad / MeanLoad.
	Skew float64
	// AdjustedCost is max(Comm, k × MaxLoad) — the skew-aware cost the
	// adaptive planner ranks by.
	AdjustedCost int64
	// Applied reports that this row's configuration was folded into its
	// candidate (for a bucket ladder, the winning rung).
	Applied bool
}

// adjustedCost is the makespan-style cost of observed loads under k reducer
// slots, in pair units: a balanced job costs its communication, a skewed
// one costs k × its straggler (the "curse of the last reducer" made
// explicit). Minimizing it trades total shipping against the hottest
// reducer the way wall-clock does.
func adjustedCost(comm, maxLoad, k int64) int64 {
	if s := k * maxLoad; s > comm {
		return s
	}
	return comm
}

// probeLadder returns the bucket counts to probe for a bucket-style
// candidate: the planned b plus doublings (capped at the encoding limit),
// stopping when the closed-form replication would exceed 16× the planned
// configuration's — a raised b splits hot reducers but multiplies
// communication, and rungs past that ratio cannot win the adjusted ranking
// at the skews the probes are meant to catch.
func probeLadder(b0 int, repl func(int) float64) []int {
	ladder := []int{b0}
	base := repl(b0)
	for _, mult := range []int{2, 4} {
		b := b0 * mult
		if b > shares.MaxIntShare {
			b = shares.MaxIntShare
		}
		if b <= ladder[len(ladder)-1] {
			break
		}
		if base > 0 && repl(b) > 16*base {
			break
		}
		ladder = append(ladder, b)
	}
	return ladder
}

// probeCandidates measures every viable candidate's reducer loads and
// folds the observations back in: Observed*/AdjustedCost are set, and
// bucket-style candidates may move to a raised b when the probes show a
// raised configuration wins the adjusted ranking. Candidates are mutated
// in place; the returned rows are the full probe table in planner order.
func probeCandidates(g *Graph, s *Sample, qs []*CQ, cands []Candidate, o planOpts) []LoadProbe {
	p := s.P()
	k := int64(o.targetReducers)
	cfg := o.engineConfig()
	var probes []LoadProbe

	row := func(st PlanStrategy, buckets int, sh []int, ls mapreduce.LoadStats) LoadProbe {
		return LoadProbe{
			Strategy:     st,
			Buckets:      buckets,
			Shares:       sh,
			Comm:         ls.Pairs,
			Keys:         ls.Keys,
			MaxLoad:      ls.MaxLoad,
			MeanLoad:     ls.MeanLoad(),
			Skew:         ls.Skew(),
			AdjustedCost: adjustedCost(ls.Pairs, ls.MaxLoad, k),
		}
	}
	// observe folds an applied probe row into its candidate: the estimates
	// become the observed values (EstComm is now exact) while CommPerEdge
	// stays the closed form of the applied configuration, matching what the
	// executed job will report as its prediction.
	observe := func(c *Candidate, pr LoadProbe) {
		c.ObservedComm = pr.Comm
		c.ObservedMaxLoad = pr.MaxLoad
		c.ObservedMeanLoad = pr.MeanLoad
		c.ObservedSkew = pr.Skew
		c.AdjustedCost = pr.AdjustedCost
		c.Probed = true
		c.EstComm = pr.Comm
		c.EstShuffleBytes = pr.Comm * planPairOverhead
	}

	// The bucket-oriented and decomposed candidates ship edges through the
	// identical mapper, so one ladder serves both; remember the result (by
	// value — probes' backing array moves as rows are appended).
	var bucketProbe LoadProbe
	bucketIdx := -1

	// With a forced strategy only that candidate's probe can change the
	// plan, so the others' map passes would be pure waste — except the
	// §2.3 candidate when the cascade is forced, whose probed b is the
	// mid-query replan target.
	shouldProbe := func(st PlanStrategy) bool {
		if o.strategy == StrategyAuto || st == o.strategy {
			return true
		}
		return o.strategy == StrategyTwoRound && st == StrategyTriangleBucketOrdered
	}

	// probeCoreBucketLadder probes a core bucket-style candidate along its
	// b/2b/4b ladder (an explicit WithBuckets pins b) and folds the winning
	// rung in — shared by bucket-oriented and, when it cannot inherit, the
	// decomposed conversion.
	probeCoreBucketLadder := func(c *Candidate) (LoadProbe, bool) {
		ladder := []int{c.Buckets}
		if o.buckets == 0 {
			ladder = probeLadder(c.Buckets, func(b int) float64 { return shares.BucketEdgeReplication(b, p) })
		}
		best := -1
		for _, b := range ladder {
			ls, err := core.ProbeBucketLoads(g, p, b, o.seed, cfg)
			if err != nil {
				continue
			}
			pr := row(c.Strategy, b, uniformIntShares(p, b), ls)
			probes = append(probes, pr)
			if best < 0 || pr.AdjustedCost < probes[best].AdjustedCost {
				best = len(probes) - 1
			}
		}
		if best < 0 {
			return LoadProbe{}, false
		}
		probes[best].Applied = true
		pr := probes[best]
		c.Buckets = pr.Buckets
		c.Shares = uniformIntShares(p, pr.Buckets)
		c.CommPerEdge = shares.BucketEdgeReplication(pr.Buckets, p)
		c.Reducers = int64(shares.UsefulReducers(pr.Buckets, p))
		observe(c, pr)
		return pr, true
	}

	// Probe cheapest-first and prune candidates that cannot win: a probed
	// candidate's adjusted cost never undercuts its shipped pairs, so once
	// some candidate achieves bestAdjusted, any candidate whose static
	// EstComm already exceeds it cannot beat it and its map passes would be
	// pure waste — the probing stays on the top candidates. Forced
	// strategies bypass the pruning (their probe is the plan).
	order := make([]int, 0, len(cands))
	for i := range cands {
		if cands[i].Viable && shouldProbe(cands[i].Strategy) {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return cands[order[a]].EstComm < cands[order[b]].EstComm })
	var bestAdjusted int64 = math.MaxInt64

	for _, i := range order {
		c := &cands[i]
		if o.strategy == StrategyAuto && c.EstComm > bestAdjusted {
			continue
		}
		switch c.Strategy {
		case StrategyBucketOriented:
			if pr, ok := probeCoreBucketLadder(c); ok {
				bucketProbe, bucketIdx = pr, i
			}

		case StrategyDecomposed:
			if bucketIdx >= 0 {
				// Same mapper, same loads: inherit the bucket ladder's
				// winning configuration without another map pass.
				bc := cands[bucketIdx]
				c.Buckets, c.Shares = bc.Buckets, uniformIntShares(p, bc.Buckets)
				c.CommPerEdge, c.Reducers = bc.CommPerEdge, bc.Reducers
				observe(c, bucketProbe)
			} else {
				probeCoreBucketLadder(c)
			}

		case StrategyVariableOriented:
			ls, err := core.ProbeVariableLoads(g, p, qs, c.Shares, o.seed, cfg)
			if err != nil {
				continue
			}
			pr := row(c.Strategy, 0, c.Shares, ls)
			pr.Applied = true
			probes = append(probes, pr)
			observe(c, pr)

		case StrategyCQOriented:
			var merged mapreduce.LoadStats
			probed := true
			for j, q := range qs {
				if j >= len(c.JobShares) {
					break
				}
				ls, err := core.ProbeCQLoads(g, q, c.JobShares[j], o.seed, cfg)
				if err != nil {
					probed = false
					break
				}
				merged = merged.Merge(ls)
			}
			if !probed {
				continue
			}
			pr := row(c.Strategy, 0, nil, merged)
			pr.Applied = true
			probes = append(probes, pr)
			observe(c, pr)

		case StrategyTriangleBucketOrdered, StrategyTrianglePartition, StrategyTriangleMultiway:
			algo, commFn, reducersFn := triangleForms(c.Strategy)
			ladder := []int{c.Buckets}
			if o.buckets == 0 && c.Strategy == StrategyTriangleBucketOrdered {
				// Only the linear-communication Section 2.3 algorithm gets a
				// ladder; raising b for Partition/Multiway grows shipping
				// superlinearly for the same straggler relief.
				ladder = probeLadder(c.Buckets, commFn)
			}
			best := -1
			for _, b := range ladder {
				ls, err := triangle.ProbeLoads(g, algo, b, o.seed, cfg)
				if err != nil {
					continue
				}
				pr := row(c.Strategy, b, uniformIntShares(3, b), ls)
				probes = append(probes, pr)
				if best < 0 || pr.AdjustedCost < probes[best].AdjustedCost {
					best = len(probes) - 1
				}
			}
			if best < 0 {
				continue
			}
			probes[best].Applied = true
			pr := probes[best]
			c.Buckets = pr.Buckets
			c.Shares = uniformIntShares(3, pr.Buckets)
			c.CommPerEdge = commFn(pr.Buckets)
			c.Reducers = reducersFn(pr.Buckets)
			observe(c, pr)

		case StrategyTwoRound:
			// Round 1's loads are the degree distribution — computed in
			// O(n + m) without a map pass. Comm keeps the exact two-round
			// total (3m + W); the straggler is round 1's hottest node (round
			// 2's loads are unknowable before the wedges exist, which is
			// what mid-query re-planning is for).
			r1 := tworound.Round1LoadStats(g)
			pr := row(c.Strategy, 0, nil, r1)
			pr.Comm = c.EstComm // the exact 3m + W total, not just round 1's pairs
			pr.AdjustedCost = adjustedCost(pr.Comm, r1.MaxLoad, k)
			pr.Applied = true
			probes = append(probes, pr)
			observe(c, pr)
		}
		if c.Probed && c.AdjustedCost < bestAdjusted {
			bestAdjusted = c.AdjustedCost
		}
	}
	return probes
}

// triangleForms returns the probe name and closed forms of a Section 2
// triangle strategy.
func triangleForms(st PlanStrategy) (algo string, comm func(int) float64, reducers func(int) int64) {
	switch st {
	case StrategyTrianglePartition:
		return "partition", triangle.PartitionCommPerEdge, triangle.PartitionReducers
	case StrategyTriangleMultiway:
		return "multiway", triangle.MultiwayCommPerEdge, triangle.MultiwayReducers
	default:
		return "bucket", triangle.BucketOrderedCommPerEdge, triangle.BucketOrderedReducers
	}
}
